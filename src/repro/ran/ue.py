"""User equipment: 5G UE state machine with per-handset behaviour profiles.

The paper collects benign traffic from four commodity handsets (Pixel 5,
Pixel 6, Galaxy A22, Galaxy A53) plus OAI software UEs on Colosseum. Each
handset model behaves slightly differently — processing delays, how often it
sends measurement reports, whether it deregisters cleanly or just goes quiet
until the network releases it, which security algorithms it supports. The
profiles below encode those differences so the benign telemetry distribution
has realistic diversity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.ran.channel import RadioChannel
from repro.ran.identifiers import Guti, Supi, conceal_supi
from repro.ran.messages import Message
from repro.ran.nas import (
    AuthenticationFailure,
    AuthenticationReject,
    AuthenticationRequest,
    AuthenticationResponse,
    DeregistrationAccept,
    DeregistrationRequest,
    FiveGmmState,
    IdentityRequest,
    IdentityResponse,
    IdentityType,
    NasSecurityModeCommand,
    NasSecurityModeComplete,
    NasSecurityModeReject,
    RegistrationAccept,
    RegistrationComplete,
    RegistrationReject,
    RegistrationRequest,
    RegistrationType,
    ServiceAccept,
    ServiceRequest,
)
from repro.ran.rrc import (
    EstablishmentCause,
    RrcDlInformationTransfer,
    RrcMeasurementReport,
    RrcPaging,
    RrcReconfiguration,
    RrcReconfigurationComplete,
    RrcReject,
    RrcRelease,
    RrcSetup,
    RrcSetupComplete,
    RrcSetupRequest,
    RrcSecurityModeCommand,
    RrcSecurityModeComplete,
    RrcState,
    RrcUlInformationTransfer,
)
from repro.ran.security import CipherAlg, IntegrityAlg, UsimCredential
from repro.sim.engine import Event, Simulator
from repro.sim.entity import Entity

# T300: RRC setup request retransmission timer (TS 38.331, typical 400ms).
T300_S = 0.4
T300_MAX_RETRIES = 3

SessionCallback = Callable[["UserEquipment", str], None]


@dataclass(frozen=True)
class UeProfile:
    """Behavioural fingerprint of one handset model."""

    name: str
    cipher_caps: tuple = (CipherAlg.NEA2, CipherAlg.NEA1, CipherAlg.NEA0)
    integrity_caps: tuple = (IntegrityAlg.NIA2, IntegrityAlg.NIA1, IntegrityAlg.NIA0)
    # UE-side processing delay per response, uniform range.
    proc_delay_min_s: float = 0.01
    proc_delay_max_s: float = 0.05
    # Post-registration measurement reporting.
    measurement_interval_s: float = 0.5
    measurements_min: int = 1
    measurements_max: int = 3
    # Probability the UE deregisters explicitly (vs. going quiet until the
    # network's inactivity timer releases it).
    deregister_prob: float = 0.7
    # Establishment-cause mix (weights).
    cause_weights: tuple = (
        (EstablishmentCause.MO_SIGNALLING, 0.5),
        (EstablishmentCause.MO_DATA, 0.35),
        (EstablishmentCause.MO_VOICE_CALL, 0.1),
        (EstablishmentCause.MO_SMS, 0.05),
    )
    # Null-scheme SUCI: the permanent identifier is sent unconcealed. Only
    # the uplink identity-extraction attack profile turns this on.
    suci_null_scheme: bool = False
    # A hardened UE refuses a security mode selecting null algorithms
    # (counters the bidding-down attack at the device).
    reject_null_security: bool = False


# The four handsets from the paper's benign collection plus the OAI soft UE.
PROFILES: dict[str, UeProfile] = {
    "pixel5": UeProfile(
        name="pixel5",
        proc_delay_min_s=0.012,
        proc_delay_max_s=0.04,
        measurement_interval_s=0.45,
        measurements_min=1,
        measurements_max=3,
        deregister_prob=0.75,
    ),
    "pixel6": UeProfile(
        name="pixel6",
        cipher_caps=(CipherAlg.NEA2, CipherAlg.NEA3, CipherAlg.NEA1, CipherAlg.NEA0),
        integrity_caps=(IntegrityAlg.NIA2, IntegrityAlg.NIA3, IntegrityAlg.NIA1, IntegrityAlg.NIA0),
        proc_delay_min_s=0.008,
        proc_delay_max_s=0.03,
        measurement_interval_s=0.4,
        measurements_min=2,
        measurements_max=4,
        deregister_prob=0.8,
    ),
    "galaxy_a22": UeProfile(
        name="galaxy_a22",
        proc_delay_min_s=0.02,
        proc_delay_max_s=0.07,
        measurement_interval_s=0.6,
        measurements_min=0,
        measurements_max=2,
        deregister_prob=0.55,
        cause_weights=(
            (EstablishmentCause.MO_SIGNALLING, 0.45),
            (EstablishmentCause.MO_DATA, 0.45),
            (EstablishmentCause.MO_SMS, 0.1),
        ),
    ),
    "galaxy_a53": UeProfile(
        name="galaxy_a53",
        cipher_caps=(CipherAlg.NEA2, CipherAlg.NEA3, CipherAlg.NEA1, CipherAlg.NEA0),
        integrity_caps=(IntegrityAlg.NIA2, IntegrityAlg.NIA3, IntegrityAlg.NIA1, IntegrityAlg.NIA0),
        proc_delay_min_s=0.015,
        proc_delay_max_s=0.05,
        measurement_interval_s=0.5,
        measurements_min=1,
        measurements_max=3,
        deregister_prob=0.65,
    ),
    "oai_ue": UeProfile(
        name="oai_ue",
        proc_delay_min_s=0.005,
        proc_delay_max_s=0.02,
        measurement_interval_s=0.3,
        measurements_min=0,
        measurements_max=2,
        deregister_prob=0.9,
        cause_weights=(
            (EstablishmentCause.MO_SIGNALLING, 0.6),
            (EstablishmentCause.MO_DATA, 0.4),
        ),
    ),
}


class UserEquipment(Entity):
    """A benign 5G UE driving registration sessions over the radio channel.

    Attack UEs (see :mod:`repro.attacks`) subclass this and override the
    behaviour they subvert.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        channel: RadioChannel,
        supi: Supi,
        usim: UsimCredential,
        profile: UeProfile,
        imei: str = "356938035643809",
    ) -> None:
        super().__init__(sim, name)
        self.channel = channel
        self.supi = supi
        self.usim = usim
        self.profile = profile
        self.imei = imei
        self.rng = sim.rng.stream(f"ue.{name}")

        self.rrc_state = RrcState.IDLE
        self.fivegmm_state = FiveGmmState.DEREGISTERED
        self.rnti: Optional[int] = None
        self.guti: Optional[str] = None
        self.s_tmsi: Optional[int] = None
        self.current_cipher: Optional[CipherAlg] = None
        self.current_integrity: Optional[IntegrityAlg] = None
        # Most recently negotiated algorithms, retained across sessions.
        self.last_cipher: Optional[CipherAlg] = None
        self.last_integrity: Optional[IntegrityAlg] = None

        self.sessions_started = 0
        self.sessions_completed = 0
        self.sessions_failed = 0
        self.auth_failures_sent = 0
        # Highest SQN accepted so far (AUTN freshness / anti-replay).
        self._last_sqn = 0

        self._t300: Optional[Event] = None
        self._t300_retries = 0
        self._on_session_end: Optional[SessionCallback] = None
        self._pending_measurements = 0
        self._deregister_after_activity = False
        self._session_active = False
        # Next session is network-initiated (paging -> service request).
        self._pending_mt = False

    # -- helpers -----------------------------------------------------------

    def _proc_delay(self) -> float:
        return self.rng.uniform(self.profile.proc_delay_min_s, self.profile.proc_delay_max_s)

    def _pick_cause(self) -> EstablishmentCause:
        causes = [c for c, _ in self.profile.cause_weights]
        weights = [w for _, w in self.profile.cause_weights]
        return self.rng.choices(causes, weights=weights, k=1)[0]

    def make_suci(self) -> str:
        """Build the registration identity (concealed unless null-scheme)."""
        if self.profile.suci_null_scheme:
            # Null-scheme SUCI: standard-compliant, but the MSIN is plaintext.
            return f"suci-null-{self.supi.mcc}-{self.supi.mnc}-{self.supi.msin}"
        return conceal_supi(self.supi)

    def send_uplink_rrc(self, message: Message) -> None:
        self.channel.uplink(self, self.rnti, message)

    def send_uplink_nas(self, nas_message: Message) -> None:
        """Wrap an uplink NAS PDU in ULInformationTransfer."""
        self.send_uplink_rrc(RrcUlInformationTransfer(nas_pdu=nas_message.to_wire()))

    # -- session driver ----------------------------------------------------

    def start_session(self, on_end: Optional[SessionCallback] = None) -> None:
        """Power on and begin a registration session."""
        if self.rrc_state is not RrcState.IDLE or self._session_active:
            raise RuntimeError(f"{self.name}: session already in progress")
        self._session_active = True
        self._on_session_end = on_end
        self.sessions_started += 1
        self._t300_retries = 0
        self._send_setup_request()

    def _send_setup_request(self) -> None:
        if self._pending_mt:
            cause = EstablishmentCause.MT_ACCESS
        else:
            cause = self._pick_cause()
        if self.s_tmsi is not None:
            request = RrcSetupRequest(
                establishment_cause=cause,
                ue_identity=self.s_tmsi,
                identity_is_tmsi=True,
            )
        else:
            request = RrcSetupRequest(
                establishment_cause=cause,
                ue_identity=self.rng.getrandbits(39),
                identity_is_tmsi=False,
            )
        self.channel.uplink(self, None, request)
        self._t300 = self.schedule(T300_S, self._on_t300, name=f"{self.name}.t300")

    def _on_t300(self) -> None:
        if self.rrc_state is not RrcState.IDLE:
            return
        self._t300_retries += 1
        if self._t300_retries > T300_MAX_RETRIES:
            self.log("T300 expired, giving up")
            self._finish_session("setup-failed")
            return
        self.log(f"T300 expired, retry {self._t300_retries}")
        self._send_setup_request()

    def _cancel_t300(self) -> None:
        if self._t300 is not None:
            self._t300.cancel()
            self._t300 = None

    def _finish_session(self, outcome: str) -> None:
        self.rrc_state = RrcState.IDLE
        self.rnti = None
        self.current_cipher = None
        self.current_integrity = None
        self._session_active = False
        self._pending_mt = False
        if outcome == "completed":
            self.sessions_completed += 1
        else:
            self.sessions_failed += 1
        callback = self._on_session_end
        self._on_session_end = None
        if callback is not None:
            callback(self, outcome)

    # -- downlink dispatch ---------------------------------------------------

    def on_downlink(self, rnti: int, message: Message) -> None:
        """Entry point for frames the channel delivers to this UE."""
        if self.rnti is not None and rnti != self.rnti:
            # A stale connection (e.g. from a duplicated setup request or an
            # abandoned access) is being addressed; the UE ignores it.
            self.log(f"stale downlink {message.name} on RNTI 0x{rnti:04x}")
            return
        handler = getattr(self, f"_on_{type(message).__name__}", None)
        if handler is None:
            self.log(f"ignoring downlink {message.name}")
            return
        handler(rnti, message)

    def _on_RrcSetup(self, rnti: int, message: RrcSetup) -> None:
        if self.rrc_state is RrcState.CONNECTED:
            # Duplicate grant from a retransmitted request; ignore it.
            return
        self._cancel_t300()
        self.rrc_state = RrcState.CONNECTED
        self.rnti = rnti
        if self._pending_mt and self.s_tmsi is not None:
            # Network-initiated: answer the page with a service request.
            self.fivegmm_state = FiveGmmState.SERVICE_REQUEST_INITIATED
            initial_nas: Message = ServiceRequest(s_tmsi=self.s_tmsi)
        else:
            self.fivegmm_state = FiveGmmState.REGISTERED_INITIATED
            initial_nas = RegistrationRequest(
                registration_type=RegistrationType.INITIAL,
                suci="" if self.guti else self.make_suci(),
                guti=self.guti or "",
                ue_security_capabilities=[int(c) for c in self.profile.cipher_caps]
                + [16 + int(i) for i in self.profile.integrity_caps],
            )
        complete = RrcSetupComplete(
            rrc_transaction_id=message.rrc_transaction_id,
            nas_pdu=initial_nas.to_wire(),
        )
        self.schedule(self._proc_delay(), lambda: self.send_uplink_rrc(complete))

    def _on_RrcReject(self, rnti: int, message: RrcReject) -> None:
        self._cancel_t300()
        self.log("RRC rejected")
        self._finish_session("rejected")

    def _on_RrcSecurityModeCommand(self, rnti: int, message: RrcSecurityModeCommand) -> None:
        self.schedule(
            self._proc_delay(),
            lambda: self.send_uplink_rrc(RrcSecurityModeComplete()),
        )

    def _on_RrcReconfiguration(self, rnti: int, message: RrcReconfiguration) -> None:
        complete = RrcReconfigurationComplete(rrc_transaction_id=message.rrc_transaction_id)
        self.schedule(self._proc_delay(), lambda: self.send_uplink_rrc(complete))
        if message.nas_pdu:
            self._handle_nas(Message.from_wire(message.nas_pdu))

    def _on_RrcDlInformationTransfer(self, rnti: int, message: RrcDlInformationTransfer) -> None:
        self._handle_nas(Message.from_wire(message.nas_pdu))

    def _on_RrcRelease(self, rnti: int, message: RrcRelease) -> None:
        if self.rrc_state is not RrcState.CONNECTED:
            return
        if self.fivegmm_state is FiveGmmState.DEREGISTERED_INITIATED:
            self.fivegmm_state = FiveGmmState.DEREGISTERED
        self._finish_session("completed")

    def _on_RrcPaging(self, rnti: int, message: RrcPaging) -> None:
        if (
            self.s_tmsi is None
            or message.s_tmsi != self.s_tmsi
            or self.rrc_state is not RrcState.IDLE
            or self._session_active
            or self.fivegmm_state is not FiveGmmState.REGISTERED
        ):
            return
        self._pending_mt = True
        self.start_session()

    # -- NAS handling --------------------------------------------------------

    def _handle_nas(self, nas: Message) -> None:
        handler = getattr(self, f"_on_nas_{type(nas).__name__}", None)
        if handler is None:
            self.log(f"ignoring NAS {nas.name}")
            return
        handler(nas)

    def _on_nas_AuthenticationRequest(self, nas: AuthenticationRequest) -> None:
        if not self.usim.verify_autn(nas.rand, nas.autn, nas.sqn):
            # The network (or an impersonator) failed the AUTN check.
            self.auth_failures_sent += 1
            failure = AuthenticationFailure(cause="MAC failure")
            self.schedule(self._proc_delay(), lambda: self.send_uplink_nas(failure))
            return
        if nas.sqn <= self._last_sqn:
            # Stale challenge: replay protection (TS 33.102 SQN freshness).
            self.auth_failures_sent += 1
            failure = AuthenticationFailure(cause="synch failure")
            self.schedule(self._proc_delay(), lambda: self.send_uplink_nas(failure))
            return
        self._last_sqn = nas.sqn
        res = self.usim.compute_res(nas.rand)
        self.schedule(
            self._proc_delay(),
            lambda: self.send_uplink_nas(AuthenticationResponse(res_star=res)),
        )

    def _on_nas_AuthenticationReject(self, nas: AuthenticationReject) -> None:
        self.log("authentication rejected by network")
        self.fivegmm_state = FiveGmmState.DEREGISTERED

    def _on_nas_IdentityRequest(self, nas: IdentityRequest) -> None:
        # Pre-security identity procedure: the UE answers with the requested
        # identity type. Responding to a SUPI request in plaintext is exactly
        # the baseband behaviour the LTrack downlink attack exploits.
        if nas.identity_type is IdentityType.SUCI:
            value = self.make_suci()
        elif nas.identity_type is IdentityType.SUPI:
            value = str(self.supi)
        elif nas.identity_type is IdentityType.IMEI:
            value = self.imei
        else:
            value = self.guti or ""
        response = IdentityResponse(identity_type=nas.identity_type, identity_value=value)
        self.schedule(self._proc_delay(), lambda: self.send_uplink_nas(response))

    def _on_nas_NasSecurityModeCommand(self, nas: NasSecurityModeCommand) -> None:
        if self.profile.reject_null_security and (
            nas.cipher_alg.is_null or nas.integrity_alg.is_null
        ):
            self.schedule(
                self._proc_delay(),
                lambda: self.send_uplink_nas(NasSecurityModeReject()),
            )
            return
        self.current_cipher = nas.cipher_alg
        self.current_integrity = nas.integrity_alg
        self.last_cipher = nas.cipher_alg
        self.last_integrity = nas.integrity_alg
        self.schedule(
            self._proc_delay(),
            lambda: self.send_uplink_nas(NasSecurityModeComplete()),
        )

    def _on_nas_RegistrationAccept(self, nas: RegistrationAccept) -> None:
        self.guti = nas.guti
        # The S-TMSI is the tail of the GUTI string (hex TMSI).
        try:
            self.s_tmsi = int(nas.guti.rsplit("-", 1)[1], 16)
        except (IndexError, ValueError):
            self.s_tmsi = None
        self.fivegmm_state = FiveGmmState.REGISTERED
        self.schedule(
            self._proc_delay(),
            lambda: self.send_uplink_nas(RegistrationComplete()),
        )
        self._begin_registered_activity()

    def _on_nas_RegistrationReject(self, nas: RegistrationReject) -> None:
        self.log(f"registration rejected: {nas.cause}")
        self.fivegmm_state = FiveGmmState.DEREGISTERED

    def _on_nas_ServiceAccept(self, nas: ServiceAccept) -> None:
        self._pending_mt = False
        self.fivegmm_state = FiveGmmState.REGISTERED
        self._begin_registered_activity()

    def _on_nas_ConfigurationUpdateCommand(self, nas) -> None:
        # GUTI reallocation after use (TS 33.501 refresh recommendation).
        self.guti = nas.guti
        try:
            self.s_tmsi = int(nas.guti.rsplit("-", 1)[1], 16)
        except (IndexError, ValueError):
            self.s_tmsi = None

    def _on_nas_DeregistrationAccept(self, nas: DeregistrationAccept) -> None:
        self.fivegmm_state = FiveGmmState.DEREGISTERED

    # -- registered-mode activity ---------------------------------------------

    def _begin_registered_activity(self) -> None:
        self._pending_measurements = self.rng.randint(
            self.profile.measurements_min, self.profile.measurements_max
        )
        self._deregister_after_activity = self.rng.random() < self.profile.deregister_prob
        self._schedule_next_activity()

    def _schedule_next_activity(self) -> None:
        interval = self.profile.measurement_interval_s * self.rng.uniform(0.7, 1.3)
        self.schedule(interval, self._activity_tick)

    def _activity_tick(self) -> None:
        if self.rrc_state is not RrcState.CONNECTED:
            return
        if self._pending_measurements > 0:
            self._pending_measurements -= 1
            report = RrcMeasurementReport(
                rsrp_dbm=self.rng.uniform(-110.0, -70.0),
                rsrq_db=self.rng.uniform(-16.0, -6.0),
            )
            self.send_uplink_rrc(report)
            self._schedule_next_activity()
            return
        if self._deregister_after_activity:
            self.fivegmm_state = FiveGmmState.DEREGISTERED_INITIATED
            self.send_uplink_nas(DeregistrationRequest(switch_off=False))
        # Otherwise: go quiet; the CU inactivity timer will release us.
