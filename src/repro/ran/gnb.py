"""gNB with CU/DU functional split over the F1 interface (TS 38.401).

The **DU** owns the radio side: it terminates the channel, allocates C-RNTIs
on initial access, and shuttles RRC containers to/from the CU over F1AP.
The **CU** owns RRC and the NG interface toward the AMF, holds per-UE
contexts, runs the inactivity timer, and — in the 6G-XSec deployment — hosts
the E2 RIC agent (the F1/NG link taps feed the telemetry pipeline).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.ran.channel import RadioChannel
from repro.ran.f1ap import (
    F1DlRrcMessageTransfer,
    F1InitialUlRrcMessageTransfer,
    F1Paging,
    F1UeContextReleaseCommand,
    F1UeContextReleaseComplete,
    F1UeContextSetupRequest,
    F1UeContextSetupResponse,
    F1UlRrcMessageTransfer,
)
from repro.ran.identifiers import RntiAllocator
from repro.ran.links import InterfaceLink
from repro.ran.messages import Message
from repro.ran.ngap import (
    NgDownlinkNasTransport,
    NgInitialContextSetupRequest,
    NgInitialContextSetupResponse,
    NgInitialUeMessage,
    NgPaging,
    NgUeContextReleaseCommand,
    NgUeContextReleaseComplete,
    NgUeContextReleaseRequest,
    NgUplinkNasTransport,
)
from repro.ran.rrc import (
    RrcDlInformationTransfer,
    RrcMeasurementReport,
    RrcPaging,
    RrcReconfiguration,
    RrcReconfigurationComplete,
    RrcRelease,
    RrcSecurityModeCommand,
    RrcReject,
    RrcSecurityModeFailure,
    RrcSecurityModeComplete,
    RrcSetup,
    RrcSetupComplete,
    RrcSetupRequest,
    RrcUlInformationTransfer,
)
from repro.ran.security import CipherAlg, IntegrityAlg
from repro.sim.engine import Simulator
from repro.sim.entity import Entity


class GnbDu(Entity):
    """Distributed Unit: radio termination + RNTI management."""

    def __init__(self, sim: Simulator, name: str, channel: RadioChannel, f1: InterfaceLink) -> None:
        super().__init__(sim, name)
        self.channel = channel
        self.f1 = f1
        channel.attach_du(self)
        self.rntis = RntiAllocator(sim.rng.stream(f"du.{name}.rnti"))
        self._du_ue_ids = itertools.count(1)
        self._rnti_to_du_id: dict[int, int] = {}
        self._du_id_to_rnti: dict[int, int] = {}
        # Access rate limiting (dApp-style real-time control, paper §5):
        # at most `limit` setup requests per `window` seconds when set.
        self._rate_limit: Optional[tuple[int, float]] = None
        self._recent_setups: list[float] = []
        self.setup_requests_rate_limited = 0

    def set_rate_limit(self, max_setups: int, window_s: float) -> None:
        """Cap the admitted RRCSetupRequest rate (RIC/dApp control)."""
        if max_setups < 1 or window_s <= 0:
            raise ValueError("rate limit must admit at least one setup")
        self._rate_limit = (max_setups, window_s)

    def clear_rate_limit(self) -> None:
        self._rate_limit = None
        self._recent_setups.clear()

    def _admit_setup(self) -> bool:
        if self._rate_limit is None:
            return True
        limit, window = self._rate_limit
        horizon = self.now - window
        self._recent_setups[:] = [t for t in self._recent_setups if t > horizon]
        if len(self._recent_setups) >= limit:
            self.setup_requests_rate_limited += 1
            return False
        self._recent_setups.append(self.now)
        return True

    # -- uplink from the channel --------------------------------------------

    def on_uplink(self, ue, rnti: Optional[int], message: Message) -> None:
        if rnti is None:
            if not isinstance(message, RrcSetupRequest):
                self.log(f"dropping initial-access {message.name}")
                return
            if not self._admit_setup():
                # Barred at the radio: no RNTI is spent on the request.
                return
            new_rnti = self.rntis.allocate()
            du_ue_id = next(self._du_ue_ids)
            self._rnti_to_du_id[new_rnti] = du_ue_id
            self._du_id_to_rnti[du_ue_id] = new_rnti
            self.channel.bind_rnti(new_rnti, ue)
            self.f1.send_to_b(
                F1InitialUlRrcMessageTransfer(
                    gnb_du_ue_id=du_ue_id,
                    c_rnti=new_rnti,
                    rrc_container=message.to_wire(),
                )
            )
            return
        du_ue_id = self._rnti_to_du_id.get(rnti)
        if du_ue_id is None:
            self.log(f"uplink on unknown RNTI 0x{rnti:04x}")
            return
        self.f1.send_to_b(
            F1UlRrcMessageTransfer(
                gnb_du_ue_id=du_ue_id,
                gnb_cu_ue_id=0,
                rrc_container=message.to_wire(),
            )
        )

    # -- F1 from the CU -------------------------------------------------------

    def on_f1(self, message: Message) -> None:
        if isinstance(message, F1DlRrcMessageTransfer):
            rnti = self._du_id_to_rnti.get(message.gnb_du_ue_id)
            if rnti is None:
                self.log(f"DL for unknown du_ue_id {message.gnb_du_ue_id}")
                return
            self.channel.downlink(rnti, Message.from_wire(message.rrc_container))
        elif isinstance(message, F1UeContextSetupRequest):
            self.f1.send_to_b(
                F1UeContextSetupResponse(
                    gnb_du_ue_id=message.gnb_du_ue_id,
                    gnb_cu_ue_id=message.gnb_cu_ue_id,
                )
            )
        elif isinstance(message, F1Paging):
            self.channel.broadcast(RrcPaging(s_tmsi=message.s_tmsi))
        elif isinstance(message, F1UeContextReleaseCommand):
            rnti = self._du_id_to_rnti.pop(message.gnb_du_ue_id, None)
            if rnti is not None:
                self._rnti_to_du_id.pop(rnti, None)
                self.rntis.release(rnti)
                self.channel.unbind_rnti(rnti)
            self.f1.send_to_b(
                F1UeContextReleaseComplete(
                    gnb_du_ue_id=message.gnb_du_ue_id,
                    gnb_cu_ue_id=message.gnb_cu_ue_id,
                )
            )
        else:
            self.log(f"unhandled F1 message {message.name}")


@dataclass
class CuUeContext:
    """Per-UE state held at the CU."""

    cu_ue_id: int
    du_ue_id: int
    rnti: int
    amf_ue_id: int = 0
    s_tmsi: Optional[int] = None
    establishment_cause: str = ""
    last_activity: float = 0.0
    releasing: bool = False
    security_activated: bool = False
    cipher_alg: Optional[CipherAlg] = None
    integrity_alg: Optional[IntegrityAlg] = None


class GnbCu(Entity):
    """Central Unit: RRC anchor + NG interface toward the AMF."""

    # Release a connected UE after this much quiet time (seconds).
    INACTIVITY_TIMEOUT_S = 3.0
    SWEEP_INTERVAL_S = 1.0

    def __init__(self, sim: Simulator, name: str, f1: InterfaceLink, ng: InterfaceLink) -> None:
        super().__init__(sim, name)
        self.f1 = f1
        self.ng = ng
        self._cu_ue_ids = itertools.count(1)
        self._contexts: dict[int, CuUeContext] = {}
        self._du_id_to_cu_id: dict[int, int] = {}
        self._tmsi_to_cu_id: dict[int, int] = {}
        self._sweeping = False
        # Temporary identities barred from access (set via RIC control).
        self.tmsi_blocklist: set[int] = set()
        self.setup_requests_rejected = 0

    def start(self) -> None:
        """Begin the periodic inactivity sweep."""
        if not self._sweeping:
            self._sweeping = True
            self.schedule(self.SWEEP_INTERVAL_S, self._sweep)

    @property
    def active_contexts(self) -> int:
        return len(self._contexts)

    def context_for_rnti(self, rnti: int) -> Optional[CuUeContext]:
        for ctx in self._contexts.values():
            if ctx.rnti == rnti:
                return ctx
        return None

    # -- inactivity management ------------------------------------------------

    def _sweep(self) -> None:
        for ctx in list(self._contexts.values()):
            if ctx.releasing:
                continue
            if self.now - ctx.last_activity > self.INACTIVITY_TIMEOUT_S:
                self._initiate_release(ctx, cause="user-inactivity")
        if self._sweeping:
            self.schedule(self.SWEEP_INTERVAL_S, self._sweep)

    def _initiate_release(self, ctx: CuUeContext, cause: str) -> None:
        """Start releasing a UE, via the AMF when it holds a context."""
        if ctx.releasing:
            return
        ctx.releasing = True
        if ctx.amf_ue_id:
            self.ng.send_to_b(
                NgUeContextReleaseRequest(
                    ran_ue_id=ctx.cu_ue_id,
                    amf_ue_id=ctx.amf_ue_id,
                    cause=cause,
                )
            )
        else:
            # Never reached the AMF (e.g. abandoned setup): release locally.
            self._release_locally(ctx, cause=cause)

    def release_rnti(self, rnti: int, cause: str = "ric-control") -> bool:
        """RIC-control hook: release the UE currently holding ``rnti``."""
        ctx = self.context_for_rnti(rnti)
        if ctx is None or ctx.releasing:
            return False
        self._initiate_release(ctx, cause=cause)
        return True

    def _release_locally(self, ctx: CuUeContext, cause: str) -> None:
        self._send_dl_rrc(ctx, RrcRelease(cause=cause))
        self.f1.send_to_a(
            F1UeContextReleaseCommand(
                gnb_du_ue_id=ctx.du_ue_id, gnb_cu_ue_id=ctx.cu_ue_id, cause=cause
            )
        )
        self._drop_context(ctx)

    def _drop_context(self, ctx: CuUeContext) -> None:
        self._contexts.pop(ctx.cu_ue_id, None)
        self._du_id_to_cu_id.pop(ctx.du_ue_id, None)
        if ctx.s_tmsi is not None and self._tmsi_to_cu_id.get(ctx.s_tmsi) == ctx.cu_ue_id:
            self._tmsi_to_cu_id.pop(ctx.s_tmsi)

    # -- helpers ----------------------------------------------------------------

    def _send_dl_rrc(self, ctx: CuUeContext, rrc: Message) -> None:
        self.f1.send_to_a(
            F1DlRrcMessageTransfer(
                gnb_du_ue_id=ctx.du_ue_id,
                gnb_cu_ue_id=ctx.cu_ue_id,
                rrc_container=rrc.to_wire(),
            )
        )

    # -- F1 from the DU ------------------------------------------------------

    def on_f1(self, message: Message) -> None:
        if isinstance(message, F1InitialUlRrcMessageTransfer):
            self._on_initial_access(message)
        elif isinstance(message, F1UlRrcMessageTransfer):
            cu_ue_id = self._du_id_to_cu_id.get(message.gnb_du_ue_id)
            ctx = self._contexts.get(cu_ue_id) if cu_ue_id is not None else None
            if ctx is None:
                self.log(f"UL for unknown du_ue_id {message.gnb_du_ue_id}")
                return
            ctx.last_activity = self.now
            self._on_ul_rrc(ctx, Message.from_wire(message.rrc_container))
        elif isinstance(message, (F1UeContextSetupResponse, F1UeContextReleaseComplete)):
            pass  # acknowledgements; context bookkeeping already done
        else:
            self.log(f"unhandled F1 message {message.name}")

    def _on_initial_access(self, message: F1InitialUlRrcMessageTransfer) -> None:
        request = Message.from_wire(message.rrc_container)
        if not isinstance(request, RrcSetupRequest):
            self.log(f"initial access carried {request.name}; ignoring")
            return
        if request.identity_is_tmsi and request.ue_identity in self.tmsi_blocklist:
            # Barred identity (RIC control action): reject and free the RNTI.
            self.setup_requests_rejected += 1
            self.f1.send_to_a(
                F1DlRrcMessageTransfer(
                    gnb_du_ue_id=message.gnb_du_ue_id,
                    gnb_cu_ue_id=0,
                    rrc_container=RrcReject(wait_time_s=4).to_wire(),
                )
            )
            self.f1.send_to_a(
                F1UeContextReleaseCommand(
                    gnb_du_ue_id=message.gnb_du_ue_id,
                    gnb_cu_ue_id=0,
                    cause="access-barred",
                )
            )
            return
        cu_ue_id = next(self._cu_ue_ids)
        ctx = CuUeContext(
            cu_ue_id=cu_ue_id,
            du_ue_id=message.gnb_du_ue_id,
            rnti=message.c_rnti,
            establishment_cause=request.establishment_cause.value,
            last_activity=self.now,
        )
        self._contexts[cu_ue_id] = ctx
        self._du_id_to_cu_id[message.gnb_du_ue_id] = cu_ue_id
        if request.identity_is_tmsi:
            ctx.s_tmsi = request.ue_identity
            # Blind-DoS-relevant behaviour: a new access claiming an S-TMSI
            # that is already attached causes the network to release the old
            # connection (TS 38.331 re-establishment handling; exploited by
            # Kim et al. 2019).
            old_cu_id = self._tmsi_to_cu_id.get(request.ue_identity)
            if old_cu_id is not None and old_cu_id in self._contexts:
                old_ctx = self._contexts[old_cu_id]
                if not old_ctx.releasing:
                    old_ctx.releasing = True
                    if old_ctx.amf_ue_id:
                        self.ng.send_to_b(
                            NgUeContextReleaseRequest(
                                ran_ue_id=old_ctx.cu_ue_id,
                                amf_ue_id=old_ctx.amf_ue_id,
                                cause="radio-connection-with-ue-lost",
                            )
                        )
                    else:
                        self._release_locally(old_ctx, cause="reestablishment")
            self._tmsi_to_cu_id[request.ue_identity] = cu_ue_id
        self._send_dl_rrc(ctx, RrcSetup(rrc_transaction_id=0))

    def _on_ul_rrc(self, ctx: CuUeContext, rrc: Message) -> None:
        if isinstance(rrc, RrcSetupComplete):
            self.ng.send_to_b(
                NgInitialUeMessage(
                    ran_ue_id=ctx.cu_ue_id,
                    nas_pdu=rrc.nas_pdu,
                    establishment_cause=ctx.establishment_cause,
                )
            )
        elif isinstance(rrc, RrcUlInformationTransfer):
            if not ctx.amf_ue_id:
                self.log(f"cu_ue {ctx.cu_ue_id}: UL NAS before AMF context; dropping")
                return
            self.ng.send_to_b(
                NgUplinkNasTransport(
                    ran_ue_id=ctx.cu_ue_id,
                    amf_ue_id=ctx.amf_ue_id,
                    nas_pdu=rrc.nas_pdu,
                )
            )
        elif isinstance(rrc, RrcSecurityModeComplete):
            ctx.security_activated = True
            self._send_dl_rrc(ctx, RrcReconfiguration(rrc_transaction_id=1))
        elif isinstance(rrc, RrcSecurityModeFailure):
            self._release_locally(ctx, cause="security-failure")
        elif isinstance(rrc, RrcReconfigurationComplete):
            if ctx.amf_ue_id:
                self.ng.send_to_b(
                    NgInitialContextSetupResponse(
                        ran_ue_id=ctx.cu_ue_id, amf_ue_id=ctx.amf_ue_id
                    )
                )
        elif isinstance(rrc, RrcMeasurementReport):
            pass  # activity timestamp already refreshed
        else:
            self.log(f"unhandled UL RRC {rrc.name}")

    # -- NG from the AMF -------------------------------------------------------

    def on_ng(self, message: Message) -> None:
        if isinstance(message, NgDownlinkNasTransport):
            ctx = self._contexts.get(message.ran_ue_id)
            if ctx is None:
                self.log(f"DL NAS for unknown ran_ue_id {message.ran_ue_id}")
                return
            ctx.amf_ue_id = message.amf_ue_id
            self._send_dl_rrc(ctx, RrcDlInformationTransfer(nas_pdu=message.nas_pdu))
        elif isinstance(message, NgInitialContextSetupRequest):
            ctx = self._contexts.get(message.ran_ue_id)
            if ctx is None:
                return
            ctx.amf_ue_id = message.amf_ue_id
            ctx.cipher_alg = CipherAlg(message.cipher_alg)
            ctx.integrity_alg = IntegrityAlg(message.integrity_alg)
            self.f1.send_to_a(
                F1UeContextSetupRequest(
                    gnb_du_ue_id=ctx.du_ue_id, gnb_cu_ue_id=ctx.cu_ue_id
                )
            )
            self._send_dl_rrc(
                ctx,
                RrcSecurityModeCommand(
                    cipher_alg=ctx.cipher_alg, integrity_alg=ctx.integrity_alg
                ),
            )
        elif isinstance(message, NgUeContextReleaseCommand):
            ctx = self._contexts.get(message.ran_ue_id)
            if ctx is None:
                return
            self._send_dl_rrc(ctx, RrcRelease(cause=message.cause))
            self.f1.send_to_a(
                F1UeContextReleaseCommand(
                    gnb_du_ue_id=ctx.du_ue_id,
                    gnb_cu_ue_id=ctx.cu_ue_id,
                    cause=message.cause,
                )
            )
            self._drop_context(ctx)
            self.ng.send_to_b(
                NgUeContextReleaseComplete(
                    ran_ue_id=message.ran_ue_id, amf_ue_id=message.amf_ue_id
                )
            )
        elif isinstance(message, NgPaging):
            # Relay to the DU, which broadcasts it over the cell.
            self.f1.send_to_a(F1Paging(s_tmsi=message.s_tmsi))
        else:
            self.log(f"unhandled NG message {message.name}")
