"""NAS (Non-Access Stratum) messages for 5G registration (TS 24.501).

Covers the 5GMM procedures the five evaluated attacks manipulate:
registration, identification, 5G-AKA authentication, the NAS security mode
procedure (where the null-cipher downgrade shows up), service request and
deregistration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.ran.messages import (
    Direction,
    Message,
    Protocol,
    register_enum_field_type,
)
from repro.ran.security import CipherAlg, IntegrityAlg


class FiveGmmState(enum.Enum):
    """UE 5GMM states (TS 24.501 §5.1.3)."""

    DEREGISTERED = "5GMM-DEREGISTERED"
    REGISTERED_INITIATED = "5GMM-REGISTERED-INITIATED"
    REGISTERED = "5GMM-REGISTERED"
    DEREGISTERED_INITIATED = "5GMM-DEREGISTERED-INITIATED"
    SERVICE_REQUEST_INITIATED = "5GMM-SERVICE-REQUEST-INITIATED"


class RegistrationType(enum.Enum):
    INITIAL = "initial"
    MOBILITY_UPDATE = "mobility-update"
    PERIODIC_UPDATE = "periodic-update"
    EMERGENCY = "emergency"


class IdentityType(enum.Enum):
    """Identity types an Identity Request can demand (TS 24.501 §9.11.3.3)."""

    SUCI = "suci"
    GUTI = "5g-guti"
    IMEI = "imei"
    # Requesting the permanent identifier in the clear is the
    # identity-extraction attack primitive.
    SUPI = "supi"


class FiveGmmCause(enum.Enum):
    """Subset of 5GMM cause values (TS 24.501 §9.11.3.2)."""

    ILLEGAL_UE = 3
    PLMN_NOT_ALLOWED = 11
    CONGESTION = 22
    SECURITY_MODE_REJECTED = 24
    PROTOCOL_ERROR = 111


register_enum_field_type(RegistrationType)
register_enum_field_type(IdentityType)
register_enum_field_type(FiveGmmCause)


@dataclass
class RegistrationRequest(Message):
    """UE -> AMF: initial registration carrying SUCI or 5G-GUTI."""

    NAME = "RegistrationRequest"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK

    registration_type: RegistrationType = RegistrationType.INITIAL
    # Exactly one of these identifies the UE.
    suci: str = ""
    guti: str = ""
    ue_security_capabilities: list = field(default_factory=list)


@dataclass
class AuthenticationRequest(Message):
    """AMF -> UE: 5G-AKA challenge (RAND, AUTN).

    ``sqn`` models the SQN⊕AK component of AUTN: the UE checks it for
    freshness (anti-replay) and verifies the AUTN MAC against it.
    """

    NAME = "AuthenticationRequest"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK

    rand: bytes = b""
    autn: bytes = b""
    sqn: int = 0


@dataclass
class AuthenticationResponse(Message):
    """UE -> AMF: RES* computed from the challenge."""

    NAME = "AuthenticationResponse"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK

    res_star: bytes = b""


@dataclass
class AuthenticationFailure(Message):
    """UE -> AMF: AUTN verification failed (MAC failure / sync failure)."""

    NAME = "AuthenticationFailure"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK

    cause: str = "MAC failure"


@dataclass
class AuthenticationReject(Message):
    """AMF -> UE: authentication rejected; UE considers itself illegal."""

    NAME = "AuthenticationReject"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK


@dataclass
class IdentityRequest(Message):
    """AMF -> UE: request an identity. Requesting SUPI pre-security is the
    downlink identity-extraction attack's injected message."""

    NAME = "IdentityRequest"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK

    identity_type: IdentityType = IdentityType.SUCI


@dataclass
class IdentityResponse(Message):
    """UE -> AMF: the requested identity (plaintext before NAS security)."""

    NAME = "IdentityResponse"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK

    identity_type: IdentityType = IdentityType.SUCI
    identity_value: str = ""


@dataclass
class NasSecurityModeCommand(Message):
    """AMF -> UE: activate NAS security with selected algorithms."""

    NAME = "NASSecurityModeCommand"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK

    cipher_alg: CipherAlg = CipherAlg.NEA2
    integrity_alg: IntegrityAlg = IntegrityAlg.NIA2
    replayed_capabilities: list = field(default_factory=list)


@dataclass
class NasSecurityModeComplete(Message):
    """UE -> AMF: NAS security activated."""

    NAME = "NASSecurityModeComplete"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK


@dataclass
class NasSecurityModeReject(Message):
    """UE -> AMF: refused the proposed security configuration."""

    NAME = "NASSecurityModeReject"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK

    cause: FiveGmmCause = FiveGmmCause.SECURITY_MODE_REJECTED


@dataclass
class RegistrationAccept(Message):
    """AMF -> UE: registration accepted; assigns a fresh 5G-GUTI."""

    NAME = "RegistrationAccept"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK

    guti: str = ""


@dataclass
class RegistrationComplete(Message):
    """UE -> AMF: acknowledges the new GUTI."""

    NAME = "RegistrationComplete"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK


@dataclass
class RegistrationReject(Message):
    """AMF -> UE: registration rejected with a 5GMM cause."""

    NAME = "RegistrationReject"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK

    cause: FiveGmmCause = FiveGmmCause.PROTOCOL_ERROR


@dataclass
class ServiceRequest(Message):
    """UE -> AMF: transition from IDLE to CONNECTED for pending traffic."""

    NAME = "ServiceRequest"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK

    s_tmsi: int = 0


@dataclass
class ServiceAccept(Message):
    """AMF -> UE: service request granted."""

    NAME = "ServiceAccept"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK


@dataclass
class ServiceReject(Message):
    """AMF -> UE: service request denied."""

    NAME = "ServiceReject"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK

    cause: FiveGmmCause = FiveGmmCause.CONGESTION


@dataclass
class ConfigurationUpdateCommand(Message):
    """AMF -> UE: generic UE configuration update; used here to reallocate
    the 5G-GUTI after each use (TS 33.501 recommends frequent refresh)."""

    NAME = "ConfigurationUpdateCommand"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK

    guti: str = ""


@dataclass
class DeregistrationRequest(Message):
    """UE -> AMF: UE-initiated deregistration (power-off / detach)."""

    NAME = "DeregistrationRequest"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.UPLINK

    switch_off: bool = True


@dataclass
class DeregistrationAccept(Message):
    """AMF -> UE: deregistration acknowledged."""

    NAME = "DeregistrationAccept"
    PROTOCOL = Protocol.NAS
    DIRECTION = Direction.DOWNLINK
