"""RRC (Radio Resource Control) messages and UE RRC state (TS 38.331).

Only the information elements the MobiFlow telemetry extracts are modelled
(Table 1 of the paper): establishment cause, UE identity (random value or
5G-S-TMSI), and the security-mode algorithm selections.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.ran.messages import (
    Direction,
    Message,
    Protocol,
    register_enum_field_type,
)
from repro.ran.security import CipherAlg, IntegrityAlg


class RrcState(enum.Enum):
    """UE RRC states (TS 38.331 §4.2.1)."""

    IDLE = "RRC_IDLE"
    CONNECTED = "RRC_CONNECTED"
    INACTIVE = "RRC_INACTIVE"


class EstablishmentCause(enum.Enum):
    """RRC establishment cause reported in RRCSetupRequest (TS 38.331)."""

    EMERGENCY = "emergency"
    HIGH_PRIORITY_ACCESS = "highPriorityAccess"
    MT_ACCESS = "mt-Access"
    MO_SIGNALLING = "mo-Signalling"
    MO_DATA = "mo-Data"
    MO_VOICE_CALL = "mo-VoiceCall"
    MO_SMS = "mo-SMS"
    MPS_PRIORITY_ACCESS = "mps-PriorityAccess"


register_enum_field_type(EstablishmentCause)
register_enum_field_type(CipherAlg)
register_enum_field_type(IntegrityAlg)


@dataclass
class RrcSetupRequest(Message):
    """UE -> gNB: request a new RRC connection (msg3 of random access)."""

    NAME = "RRCSetupRequest"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.UPLINK

    establishment_cause: EstablishmentCause = EstablishmentCause.MO_SIGNALLING
    # Either a 39-bit random value (fresh UE) or the 5G-S-TMSI (known UE).
    ue_identity: int = 0
    identity_is_tmsi: bool = False


@dataclass
class RrcSetup(Message):
    """gNB -> UE: accept the connection, assign SRB1 config."""

    NAME = "RRCSetup"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.DOWNLINK

    rrc_transaction_id: int = 0


@dataclass
class RrcReject(Message):
    """gNB -> UE: reject the connection (congestion / barring)."""

    NAME = "RRCReject"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.DOWNLINK

    wait_time_s: int = 1


@dataclass
class RrcSetupComplete(Message):
    """UE -> gNB: connection established; carries the initial NAS message."""

    NAME = "RRCSetupComplete"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.UPLINK

    rrc_transaction_id: int = 0
    selected_plmn: str = "00101"
    # The dedicated NAS message (e.g. Registration Request), already encoded.
    nas_pdu: bytes = b""


@dataclass
class RrcSecurityModeCommand(Message):
    """gNB -> UE: activate AS security with the selected algorithms."""

    NAME = "RRCSecurityModeCommand"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.DOWNLINK

    cipher_alg: CipherAlg = CipherAlg.NEA2
    integrity_alg: IntegrityAlg = IntegrityAlg.NIA2


@dataclass
class RrcSecurityModeComplete(Message):
    """UE -> gNB: AS security activated."""

    NAME = "RRCSecurityModeComplete"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.UPLINK


@dataclass
class RrcSecurityModeFailure(Message):
    """UE -> gNB: AS security activation failed (integrity check failed)."""

    NAME = "RRCSecurityModeFailure"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.UPLINK


@dataclass
class RrcReconfiguration(Message):
    """gNB -> UE: reconfigure radio bearers / measurement config."""

    NAME = "RRCReconfiguration"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.DOWNLINK

    rrc_transaction_id: int = 0
    nas_pdu: bytes = b""


@dataclass
class RrcReconfigurationComplete(Message):
    """UE -> gNB: reconfiguration applied."""

    NAME = "RRCReconfigurationComplete"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.UPLINK

    rrc_transaction_id: int = 0


@dataclass
class RrcUlInformationTransfer(Message):
    """UE -> gNB: carries an uplink NAS PDU after connection setup."""

    NAME = "ULInformationTransfer"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.UPLINK

    nas_pdu: bytes = b""


@dataclass
class RrcDlInformationTransfer(Message):
    """gNB -> UE: carries a downlink NAS PDU."""

    NAME = "DLInformationTransfer"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.DOWNLINK

    nas_pdu: bytes = b""


@dataclass
class RrcRelease(Message):
    """gNB -> UE: release the RRC connection back to IDLE."""

    NAME = "RRCRelease"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.DOWNLINK

    cause: str = "other"


@dataclass
class RrcMeasurementReport(Message):
    """UE -> gNB: periodic / event-triggered measurement report."""

    NAME = "MeasurementReport"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.UPLINK

    rsrp_dbm: float = -90.0
    rsrq_db: float = -10.0


@dataclass
class RrcPaging(Message):
    """gNB -> UE: page an IDLE UE by its 5G-S-TMSI."""

    NAME = "Paging"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.DOWNLINK

    s_tmsi: int = 0


@dataclass
class RrcReestablishmentRequest(Message):
    """UE -> gNB: attempt to re-establish after radio link failure."""

    NAME = "RRCReestablishmentRequest"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.UPLINK

    c_rnti: int = 0
    cause: str = "otherFailure"
