"""Base machinery for simulated 3GPP control-plane messages.

Every RRC and NAS message is a dataclass registered here with a stable
message name (the same names the MobiFlow telemetry reports and the LLM
prompt displays). Messages serialize to TLV bytes via :mod:`repro.wire` so
they can cross the simulated F1/NG interfaces and be captured as pcap
records.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Type, TypeVar

from repro import wire


class Direction(enum.Enum):
    """Link direction of a control message."""

    UPLINK = "UL"
    DOWNLINK = "DL"


class Protocol(enum.Enum):
    """Protocol layer of a control message."""

    RRC = "RRC"
    NAS = "NAS"


class MessageError(ValueError):
    """Raised when a message fails to encode/decode."""


_REGISTRY: Dict[str, Type["Message"]] = {}

# Per-class tuple of dataclass field names. ``dataclasses.fields`` walks
# the class hierarchy and allocates Field views on every call, which shows
# up hot in telemetry generation (fields() runs per captured message).
# Populated lazily on first use — it cannot be built in __init_subclass__
# because @dataclass wraps the class *after* that hook runs.
_FIELD_NAMES: Dict[type, tuple] = {}

M = TypeVar("M", bound="Message")


def _field_names(cls: type) -> tuple:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = _FIELD_NAMES[cls] = tuple(
            field.name for field in dataclasses.fields(cls)
        )
    return names


@dataclass
class Message:
    """Base class for control-plane messages.

    Subclasses set ``NAME`` (wire identifier, matches telemetry naming),
    ``PROTOCOL`` and ``DIRECTION`` as class attributes and declare their
    information elements as dataclass fields.
    """

    NAME: ClassVar[str] = ""
    PROTOCOL: ClassVar[Protocol] = Protocol.RRC
    DIRECTION: ClassVar[Direction] = Direction.UPLINK

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.NAME:
            existing = _REGISTRY.get(cls.NAME)
            if existing is not None and existing is not cls:
                raise MessageError(f"duplicate message name {cls.NAME!r}")
            _REGISTRY[cls.NAME] = cls

    @property
    def name(self) -> str:
        return type(self).NAME

    @property
    def protocol(self) -> Protocol:
        return type(self).PROTOCOL

    @property
    def direction(self) -> Direction:
        return type(self).DIRECTION

    def fields(self) -> Dict[str, Any]:
        """Return the message's information elements as a plain dict."""
        out: Dict[str, Any] = {}
        for name in _field_names(type(self)):
            value = getattr(self, name)
            if isinstance(value, enum.Enum):
                value = value.value
            out[name] = value
        return out

    def to_wire(self) -> bytes:
        """Serialize to TLV bytes: ``{"msg": NAME, "ie": {...}}``."""
        # encode_fast produces byte-identical output to encode() for every
        # value a message can hold (str/int/float/bool/None/dict), so the
        # fast path is unconditional.
        return wire.encode_fast({"msg": type(self).NAME, "ie": self.fields()})

    @staticmethod
    def from_wire(data: bytes) -> "Message":
        """Decode bytes back into the registered message class."""
        try:
            blob = wire.decode(data)
        except wire.WireError as exc:
            raise MessageError(f"undecodable message: {exc}") from exc
        if not isinstance(blob, dict) or "msg" not in blob:
            raise MessageError("wire blob is not a message envelope")
        name = blob["msg"]
        cls = _REGISTRY.get(name)
        if cls is None:
            raise MessageError(f"unknown message name {name!r}")
        ie = blob.get("ie", {})
        if not isinstance(ie, dict):
            raise MessageError("message IEs are not a dict")
        kwargs: Dict[str, Any] = {}
        for field in dataclasses.fields(cls):  # needs field.type for enums
            if field.name not in ie:
                raise MessageError(f"{name}: missing IE {field.name!r}")
            value = ie[field.name]
            # Rehydrate enum-typed fields from their raw wire values.
            if isinstance(field.type, type) and issubclass(field.type, enum.Enum):
                value = field.type(value)
            elif isinstance(field.type, str):
                enum_cls = _ENUM_FIELD_TYPES.get(field.type)
                if enum_cls is not None and value is not None:
                    value = enum_cls(value)
            kwargs[field.name] = value
        return cls(**kwargs)

    @staticmethod
    def registered_names() -> list[str]:
        return sorted(_REGISTRY)

    @staticmethod
    def lookup(name: str) -> Type["Message"]:
        cls = _REGISTRY.get(name)
        if cls is None:
            raise MessageError(f"unknown message name {name!r}")
        return cls


# Dataclass field annotations are strings under ``from __future__ import
# annotations``; map the enum type names used by message fields so
# ``from_wire`` can rehydrate them without evaluating annotations.
_ENUM_FIELD_TYPES: Dict[str, Type[enum.Enum]] = {}


def register_enum_field_type(enum_cls: Type[enum.Enum]) -> None:
    """Register an enum so string-annotated fields decode back to it."""
    _ENUM_FIELD_TYPES[enum_cls.__name__] = enum_cls
    _ENUM_FIELD_TYPES[f"Optional[{enum_cls.__name__}]"] = enum_cls
