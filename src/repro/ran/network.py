"""End-to-end 5G SA network assembly.

:class:`FiveGNetwork` wires up the whole data plane the paper's testbed has:
radio channel -> DU -> (F1) -> CU -> (NG) -> AMF, with pcap capture taps on
F1AP and NGAP (where the telemetry collector and the E2 RIC agent attach),
and a subscriber database for provisioning UEs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.ran.channel import ChannelConfig, RadioChannel
from repro.ran.core_network import Amf, AmfConfig, SubscriberDatabase
from repro.ran.gnb import GnbCu, GnbDu
from repro.ran.identifiers import Supi
from repro.ran.links import InterfaceLink
from repro.ran.pcap import PcapStream
from repro.ran.ue import PROFILES, UeProfile, UserEquipment
from repro.sim.engine import Simulator


@dataclass
class NetworkConfig:
    """Knobs for the whole simulated network."""

    seed: int = 0
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    amf: AmfConfig = field(default_factory=AmfConfig)
    f1_latency_s: float = 0.001
    ng_latency_s: float = 0.002
    plmn: str = "00101"


class FiveGNetwork:
    """A complete simulated 5G SA network with capture taps.

    Typical use::

        net = FiveGNetwork(NetworkConfig(seed=1))
        ue = net.add_ue("pixel5")
        ue.start_session()
        net.run(until=30.0)
        records = net.pcap.records
    """

    def __init__(self, config: Optional[NetworkConfig] = None) -> None:
        self.config = config or NetworkConfig()
        self.sim = Simulator(seed=self.config.seed)
        self.channel = RadioChannel(self.sim, self.config.channel)
        self.f1 = InterfaceLink(self.sim, "F1AP", latency_s=self.config.f1_latency_s)
        self.ng = InterfaceLink(self.sim, "NGAP", latency_s=self.config.ng_latency_s)
        self.du = GnbDu(self.sim, "du0", self.channel, self.f1)
        self.cu = GnbCu(self.sim, "cu0", self.f1, self.ng)
        self.subscribers = SubscriberDatabase()
        self.amf = Amf(self.sim, "amf0", self.ng, self.subscribers, self.config.amf)
        self.f1.connect(a_handler=self.du.on_f1, b_handler=self.cu.on_f1)
        self.ng.connect(a_handler=self.cu.on_ng, b_handler=self.amf.on_ng)
        self.pcap = PcapStream()
        self.f1.add_tap(lambda ts, iface, msg: self.pcap.capture(ts, iface, msg))
        self.ng.add_tap(lambda ts, iface, msg: self.pcap.capture(ts, iface, msg))
        self.cu.start()
        self.ues: list[UserEquipment] = []
        self._msin_counter = itertools.count(100000000)
        self._key_rng = self.sim.rng.stream("provisioning")

    def provision_supi(self) -> tuple[Supi, bytes]:
        """Mint a fresh subscriber identity and long-term key."""
        supi = Supi(mcc="001", mnc="01", msin=str(next(self._msin_counter)))
        k = self._key_rng.getrandbits(128).to_bytes(16, "big")
        return supi, k

    def add_ue(
        self,
        profile: str | UeProfile = "pixel5",
        name: Optional[str] = None,
        ue_class: type[UserEquipment] = UserEquipment,
        **ue_kwargs,
    ) -> UserEquipment:
        """Provision and attach a UE with the given handset profile."""
        if isinstance(profile, str):
            try:
                profile = PROFILES[profile]
            except KeyError:
                raise ValueError(
                    f"unknown profile {profile!r}; known: {sorted(PROFILES)}"
                ) from None
        supi, k = self.provision_supi()
        credential = self.subscribers.provision(supi, k)
        ue_name = name or f"ue{len(self.ues)}-{profile.name}"
        ue = ue_class(
            self.sim,
            ue_name,
            self.channel,
            supi=supi,
            usim=credential,
            profile=profile,
            **ue_kwargs,
        )
        self.channel.attach_ue(ue)
        self.ues.append(ue)
        return ue

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Advance the simulation."""
        return self.sim.run(until=until, max_events=max_events)
