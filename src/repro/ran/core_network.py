"""Minimal 5G core: AMF with an inline AUSF/UDM (subscriber database).

Implements the 5GMM procedures the telemetry observes: identity resolution
(SUCI deconcealment, GUTI lookup), 5G-AKA, NAS security mode with algorithm
selection, GUTI assignment, service requests and deregistration — plus the
duplicate-TMSI release behaviour that the Blind DoS attack exploits.
"""

from __future__ import annotations

import hmac
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.ran.identifiers import Guti, GutiAllocator, Supi, conceal_supi
from repro.ran.links import InterfaceLink
from repro.ran.messages import Message
from repro.ran.nas import (
    AuthenticationFailure,
    AuthenticationReject,
    ConfigurationUpdateCommand,
    AuthenticationRequest,
    AuthenticationResponse,
    DeregistrationAccept,
    DeregistrationRequest,
    FiveGmmCause,
    IdentityRequest,
    IdentityResponse,
    IdentityType,
    NasSecurityModeCommand,
    NasSecurityModeComplete,
    NasSecurityModeReject,
    RegistrationAccept,
    RegistrationComplete,
    RegistrationReject,
    RegistrationRequest,
    ServiceAccept,
    ServiceRequest,
)
from repro.ran.ngap import (
    NgDownlinkNasTransport,
    NgPaging,
    NgInitialContextSetupRequest,
    NgInitialContextSetupResponse,
    NgInitialUeMessage,
    NgUeContextReleaseCommand,
    NgUeContextReleaseComplete,
    NgUeContextReleaseRequest,
    NgUplinkNasTransport,
)
from repro.ran.security import (
    CipherAlg,
    IntegrityAlg,
    SecurityContext,
    UsimCredential,
    derive_kamf,
    select_algorithms,
)
from repro.sim.engine import Simulator
from repro.sim.entity import Entity


class SubscriberDatabase:
    """UDM-like store: long-term credentials and identity mappings."""

    def __init__(self) -> None:
        self._by_supi: dict[str, UsimCredential] = {}
        self._by_suci: dict[str, str] = {}

    def provision(self, supi: Supi, k: bytes) -> UsimCredential:
        credential = UsimCredential(str(supi), k)
        self._by_supi[str(supi)] = credential
        self._by_suci[conceal_supi(supi)] = str(supi)
        return credential

    def credential(self, supi: str) -> Optional[UsimCredential]:
        return self._by_supi.get(supi)

    def deconceal(self, suci: str) -> Optional[str]:
        """Resolve a SUCI back to the SUPI (home-network deconcealment)."""
        if suci.startswith("suci-null-"):
            # Null scheme: the digits are right there in the identifier.
            parts = suci.split("-")
            if len(parts) == 5:
                supi = f"imsi-{parts[2]}{parts[3]}{parts[4]}"
                return supi if supi in self._by_supi else None
            return None
        return self._by_suci.get(suci)


@dataclass
class AmfUeContext:
    """Per-UE 5GMM context at the AMF."""

    amf_ue_id: int
    ran_ue_id: int
    supi: str = ""
    suci: str = ""
    state: str = "deregistered"
    guti: Optional[Guti] = None
    rand: bytes = b""
    xres_star: bytes = b""
    kamf: bytes = b""
    ue_capabilities: list = field(default_factory=list)
    cipher_alg: Optional[CipherAlg] = None
    integrity_alg: Optional[IntegrityAlg] = None
    pending_registration: Optional[RegistrationRequest] = None
    auth_attempts: int = 0
    # NAS-connected (an NG context exists at the RAN). Registered UEs whose
    # connection was released stay reachable via paging.
    connected: bool = True
    # The current transaction is a service request (paging response or
    # UE-triggered), not a registration.
    pending_service: bool = False


@dataclass
class AmfConfig:
    """Network-side security policy."""

    cipher_preference: tuple = (CipherAlg.NEA2, CipherAlg.NEA1)
    integrity_preference: tuple = (IntegrityAlg.NIA2, IntegrityAlg.NIA1)
    # OAI-style permissiveness: accept null algorithms if the UE offers
    # nothing better. Required for the null-cipher attack to land.
    allow_null_algorithms: bool = True
    nas_proc_delay_s: float = 0.004


class Amf(Entity):
    """Access and Mobility Management Function."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ng: InterfaceLink,
        subscribers: SubscriberDatabase,
        config: Optional[AmfConfig] = None,
    ) -> None:
        super().__init__(sim, name)
        self.ng = ng
        self.subscribers = subscribers
        self.config = config or AmfConfig()
        self.rng = sim.rng.stream(f"amf.{name}")
        self.gutis = GutiAllocator(sim.rng.stream(f"amf.{name}.guti"))
        self._amf_ue_ids = itertools.count(1)
        self._contexts: dict[int, AmfUeContext] = {}
        self._ran_to_amf_id: dict[int, int] = {}
        self._tmsi_to_supi: dict[int, str] = {}
        self._supi_to_context: dict[str, int] = {}
        self._sqn = itertools.count(1)
        self.registrations_accepted = 0
        self.registrations_rejected = 0
        self.service_requests_accepted = 0
        self.pages_sent = 0
        self.security_mode_rejections = 0

    # -- NAS send helper ------------------------------------------------------

    def _send_nas(self, ctx: AmfUeContext, nas: Message) -> None:
        message = NgDownlinkNasTransport(
            ran_ue_id=ctx.ran_ue_id, amf_ue_id=ctx.amf_ue_id, nas_pdu=nas.to_wire()
        )
        self.schedule(self.config.nas_proc_delay_s, lambda: self.ng.send_to_a(message))

    # -- NG dispatch ------------------------------------------------------------

    def on_ng(self, message: Message) -> None:
        if isinstance(message, NgInitialUeMessage):
            self._on_initial_ue(message)
        elif isinstance(message, NgUplinkNasTransport):
            ctx = self._contexts.get(message.amf_ue_id)
            if ctx is None:
                self.log(f"UL NAS for unknown amf_ue_id {message.amf_ue_id}")
                return
            self._on_nas(ctx, Message.from_wire(message.nas_pdu))
        elif isinstance(message, NgInitialContextSetupResponse):
            pass
        elif isinstance(message, NgUeContextReleaseRequest):
            self.ng.send_to_a(
                NgUeContextReleaseCommand(
                    ran_ue_id=message.ran_ue_id,
                    amf_ue_id=message.amf_ue_id,
                    cause=message.cause,
                )
            )
        elif isinstance(message, NgUeContextReleaseComplete):
            self._on_connection_released(message.amf_ue_id)
        else:
            self.log(f"unhandled NG message {message.name}")

    def _on_connection_released(self, amf_ue_id: int) -> None:
        """The RAN connection is gone; registered UEs stay pageable."""
        ctx = self._contexts.get(amf_ue_id)
        if ctx is None:
            return
        if ctx.state == "registered":
            self._ran_to_amf_id.pop(ctx.ran_ue_id, None)
            ctx.connected = False
            return
        self._drop_context(amf_ue_id)

    def _drop_context(self, amf_ue_id: int) -> None:
        ctx = self._contexts.pop(amf_ue_id, None)
        if ctx is None:
            return
        self._ran_to_amf_id.pop(ctx.ran_ue_id, None)
        if ctx.supi and self._supi_to_context.get(ctx.supi) == amf_ue_id:
            self._supi_to_context.pop(ctx.supi)

    # -- initial UE message ------------------------------------------------------

    def _on_initial_ue(self, message: NgInitialUeMessage) -> None:
        amf_ue_id = next(self._amf_ue_ids)
        ctx = AmfUeContext(amf_ue_id=amf_ue_id, ran_ue_id=message.ran_ue_id)
        self._contexts[amf_ue_id] = ctx
        self._ran_to_amf_id[message.ran_ue_id] = amf_ue_id
        self._on_nas(ctx, Message.from_wire(message.nas_pdu))

    # -- NAS dispatch ---------------------------------------------------------------

    def _on_nas(self, ctx: AmfUeContext, nas: Message) -> None:
        if isinstance(nas, RegistrationRequest):
            self._on_registration(ctx, nas)
        elif isinstance(nas, IdentityResponse):
            self._on_identity_response(ctx, nas)
        elif isinstance(nas, AuthenticationResponse):
            self._on_auth_response(ctx, nas)
        elif isinstance(nas, AuthenticationFailure):
            self._on_auth_failure(ctx, nas)
        elif isinstance(nas, NasSecurityModeReject):
            self.registrations_rejected += 1
            self.security_mode_rejections += 1
            self._send_nas(
                ctx, RegistrationReject(cause=FiveGmmCause.SECURITY_MODE_REJECTED)
            )
        elif isinstance(nas, NasSecurityModeComplete):
            self._on_smc_complete(ctx)
        elif isinstance(nas, RegistrationComplete):
            ctx.state = "registered"
        elif isinstance(nas, ServiceRequest):
            self._on_service_request(ctx, nas)
        elif isinstance(nas, DeregistrationRequest):
            self._on_deregistration(ctx, nas)
        else:
            self.log(f"unhandled NAS {nas.name}")

    def _on_registration(self, ctx: AmfUeContext, request: RegistrationRequest) -> None:
        ctx.pending_registration = request
        ctx.ue_capabilities = list(request.ue_security_capabilities)
        ctx.state = "registering"
        supi: Optional[str] = None
        if request.guti:
            tmsi = self._tmsi_from_guti_string(request.guti)
            if tmsi is not None:
                supi = self._tmsi_to_supi.get(tmsi)
                if supi is not None:
                    self._release_stale_context(supi, ctx)
            if supi is None:
                # Unknown GUTI: ask for the concealed identity.
                self._send_nas(ctx, IdentityRequest(identity_type=IdentityType.SUCI))
                return
        elif request.suci:
            ctx.suci = request.suci
            supi = self.subscribers.deconceal(request.suci)
            if supi is None:
                self.registrations_rejected += 1
                self._send_nas(ctx, RegistrationReject(cause=FiveGmmCause.ILLEGAL_UE))
                return
        else:
            self._send_nas(ctx, IdentityRequest(identity_type=IdentityType.SUCI))
            return
        ctx.supi = supi
        self._start_authentication(ctx)

    def _tmsi_from_guti_string(self, guti: str) -> Optional[int]:
        try:
            return int(guti.rsplit("-", 1)[1], 16)
        except (IndexError, ValueError):
            return None

    def _release_stale_context(self, supi: str, new_ctx: AmfUeContext) -> None:
        """A UE re-appeared on a new connection: drop its old context.

        This is the network behaviour the Blind DoS attack triggers — the
        legitimate UE's connection is released because someone else claimed
        its temporary identity.
        """
        old_id = self._supi_to_context.get(supi)
        if old_id is None or old_id == new_ctx.amf_ue_id:
            return
        old_ctx = self._contexts.get(old_id)
        if old_ctx is None:
            return
        if not old_ctx.connected:
            # No RAN connection to tear down; the stale context is simply
            # superseded by the new transaction.
            self._drop_context(old_id)
            return
        self.ng.send_to_a(
            NgUeContextReleaseCommand(
                ran_ue_id=old_ctx.ran_ue_id,
                amf_ue_id=old_ctx.amf_ue_id,
                cause="radio-connection-with-ue-lost",
            )
        )

    def _on_identity_response(self, ctx: AmfUeContext, response: IdentityResponse) -> None:
        if response.identity_type is IdentityType.SUCI:
            supi = self.subscribers.deconceal(response.identity_value)
        elif response.identity_type is IdentityType.SUPI:
            supi = response.identity_value
            if self.subscribers.credential(supi) is None:
                supi = None
        else:
            supi = None
        if supi is None:
            self.registrations_rejected += 1
            self._send_nas(ctx, RegistrationReject(cause=FiveGmmCause.ILLEGAL_UE))
            return
        ctx.supi = supi
        self._start_authentication(ctx)

    def _start_authentication(self, ctx: AmfUeContext) -> None:
        credential = self.subscribers.credential(ctx.supi)
        if credential is None:
            self.registrations_rejected += 1
            self._send_nas(ctx, RegistrationReject(cause=FiveGmmCause.ILLEGAL_UE))
            return
        ctx.auth_attempts += 1
        rand = self.rng.getrandbits(128).to_bytes(16, "big")
        sqn = next(self._sqn)
        vector = credential.generate_vector(rand, sqn)
        ctx.rand = rand
        ctx.xres_star = vector.xres_star
        ctx.kamf = derive_kamf(vector.kausf, ctx.supi)
        self._send_nas(
            ctx, AuthenticationRequest(rand=rand, autn=vector.autn, sqn=sqn)
        )

    def _on_auth_failure(self, ctx: AmfUeContext, failure: AuthenticationFailure) -> None:
        # One fresh re-challenge covers transient sync failures; persistent
        # failure means the peer does not hold the subscriber key.
        if ctx.auth_attempts < 2 and ctx.supi:
            self._start_authentication(ctx)
            return
        self.registrations_rejected += 1
        self._send_nas(ctx, AuthenticationReject())

    def _on_auth_response(self, ctx: AmfUeContext, response: AuthenticationResponse) -> None:
        if not ctx.xres_star or not hmac.compare_digest(ctx.xres_star, response.res_star):
            self.registrations_rejected += 1
            self._send_nas(ctx, AuthenticationReject())
            return
        if ctx.pending_service:
            self._accept_service(ctx)
            return
        ue_ciphers = [CipherAlg(c) for c in ctx.ue_capabilities if c < 16]
        ue_integrity = [IntegrityAlg(c - 16) for c in ctx.ue_capabilities if c >= 16]
        cipher_pref = list(self.config.cipher_preference)
        integrity_pref = list(self.config.integrity_preference)
        if self.config.allow_null_algorithms:
            cipher_pref.append(CipherAlg.NEA0)
            integrity_pref.append(IntegrityAlg.NIA0)
        try:
            cipher, integrity = select_algorithms(
                ue_ciphers, ue_integrity, cipher_pref, integrity_pref
            )
        except ValueError:
            self.registrations_rejected += 1
            self._send_nas(
                ctx, RegistrationReject(cause=FiveGmmCause.SECURITY_MODE_REJECTED)
            )
            return
        ctx.cipher_alg = cipher
        ctx.integrity_alg = integrity
        self._send_nas(
            ctx,
            NasSecurityModeCommand(
                cipher_alg=cipher,
                integrity_alg=integrity,
                replayed_capabilities=list(ctx.ue_capabilities),
            ),
        )

    def _on_smc_complete(self, ctx: AmfUeContext) -> None:
        guti = self.gutis.allocate()
        ctx.guti = guti
        self._tmsi_to_supi[guti.tmsi] = ctx.supi
        self._supi_to_context[ctx.supi] = ctx.amf_ue_id
        security = SecurityContext(
            kamf=ctx.kamf,
            cipher_alg=ctx.cipher_alg or CipherAlg.NEA0,
            integrity_alg=ctx.integrity_alg or IntegrityAlg.NIA0,
        )
        self.ng.send_to_a(
            NgInitialContextSetupRequest(
                ran_ue_id=ctx.ran_ue_id,
                amf_ue_id=ctx.amf_ue_id,
                kgnb=security.kgnb(),
                cipher_alg=int(security.cipher_alg),
                integrity_alg=int(security.integrity_alg),
            )
        )
        self._send_nas(ctx, RegistrationAccept(guti=str(guti)))
        self.registrations_accepted += 1

    def _on_service_request(self, ctx: AmfUeContext, request: ServiceRequest) -> None:
        supi = self._tmsi_to_supi.get(request.s_tmsi)
        if supi is None:
            # Unknown temporary identity: force a full (re-)authentication.
            self._send_nas(ctx, IdentityRequest(identity_type=IdentityType.SUCI))
            return
        # Inherit the subscriber's security configuration from the old
        # 5GMM context (if one survives) before superseding it.
        old_id = self._supi_to_context.get(supi)
        old_ctx = self._contexts.get(old_id) if old_id is not None else None
        if old_ctx is not None and old_ctx is not ctx:
            ctx.ue_capabilities = list(old_ctx.ue_capabilities)
            ctx.cipher_alg = old_ctx.cipher_alg
            ctx.integrity_alg = old_ctx.integrity_alg
            ctx.guti = old_ctx.guti
        self._release_stale_context(supi, ctx)
        ctx.supi = supi
        ctx.pending_service = True
        # Integrity of the service request cannot be checked against the new
        # connection, so the network re-authenticates — but the *old* context
        # is already gone, which is what Blind DoS exploits.
        self._start_authentication(ctx)

    def _accept_service(self, ctx: AmfUeContext) -> None:
        """Resume a registered UE's session after a service request."""
        cipher = ctx.cipher_alg or CipherAlg.NEA2
        integrity = ctx.integrity_alg or IntegrityAlg.NIA2
        ctx.cipher_alg, ctx.integrity_alg = cipher, integrity
        ctx.state = "registered"
        ctx.pending_service = False
        self._supi_to_context[ctx.supi] = ctx.amf_ue_id
        security = SecurityContext(kamf=ctx.kamf, cipher_alg=cipher, integrity_alg=integrity)
        self.ng.send_to_a(
            NgInitialContextSetupRequest(
                ran_ue_id=ctx.ran_ue_id,
                amf_ue_id=ctx.amf_ue_id,
                kgnb=security.kgnb(),
                cipher_alg=int(cipher),
                integrity_alg=int(integrity),
            )
        )
        self._send_nas(ctx, ServiceAccept())
        # Reallocate the 5G-GUTI after use (TS 33.501 refresh guidance).
        fresh = self.gutis.allocate()
        ctx.guti = fresh
        self._tmsi_to_supi[fresh.tmsi] = ctx.supi
        self._send_nas(ctx, ConfigurationUpdateCommand(guti=str(fresh)))
        self.service_requests_accepted += 1

    # -- paging -----------------------------------------------------------------

    def page_supi(self, supi: str) -> bool:
        """Network-initiated service: page a registered-but-idle UE.

        Returns True when a page was actually broadcast.
        """
        ctx_id = self._supi_to_context.get(supi)
        ctx = self._contexts.get(ctx_id) if ctx_id is not None else None
        if ctx is None or ctx.connected or ctx.state != "registered" or ctx.guti is None:
            return False
        self.pages_sent += 1
        self.ng.send_to_a(NgPaging(s_tmsi=ctx.guti.tmsi))
        return True

    def _on_deregistration(self, ctx: AmfUeContext, request: DeregistrationRequest) -> None:
        ctx.state = "deregistered"
        self._send_nas(ctx, DeregistrationAccept())
        self.ng.send_to_a(
            NgUeContextReleaseCommand(
                ran_ue_id=ctx.ran_ue_id, amf_ue_id=ctx.amf_ue_id, cause="deregistration"
            )
        )
