"""Simulated radio channel between UEs and the gNB DU.

The channel models what matters to the telemetry pipeline:

- propagation and scheduling latency,
- occasional duplicate delivery (RLC retransmissions — the paper's §4.1
  names these as the main false-positive cause),
- loss of the initial RRCSetupRequest (recovered by the UE's T300 timer),
- man-in-the-middle hooks: interceptors can observe, drop, or replace
  frames, and an attacker can *inject* uplink frames on a victim's RNTI
  (overshadowing, as in AdaptOver/LTrack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, TYPE_CHECKING

from repro.ran.messages import Message
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ran.ue import UserEquipment


class UplinkSink(Protocol):
    """What the channel delivers uplink frames to (the gNB DU)."""

    def on_uplink(self, ue: "UserEquipment", rnti: Optional[int], message: Message) -> None:
        ...


# Interceptor contract: return the (possibly replaced) message, or None to
# drop the frame. Called before delivery.
DownlinkInterceptor = Callable[[int, Message], Optional[Message]]
UplinkInterceptor = Callable[["UserEquipment", Optional[int], Message], Optional[Message]]


@dataclass
class ChannelConfig:
    """Tunable channel behaviour."""

    latency_s: float = 0.002
    jitter_s: float = 0.001
    # Probability that a delivered frame is delivered twice (RLC retx).
    duplicate_prob: float = 0.0
    # Probability the initial RRCSetupRequest is lost (UE retries on T300).
    setup_loss_prob: float = 0.0


class RadioChannel:
    """Delivers RRC frames between UEs and a DU with noise and MiTM hooks."""

    def __init__(self, sim: Simulator, config: Optional[ChannelConfig] = None) -> None:
        self.sim = sim
        self.config = config or ChannelConfig()
        self._du: Optional[UplinkSink] = None
        self._rnti_to_ue: dict[int, "UserEquipment"] = {}
        self._attached_ues: list["UserEquipment"] = []
        self._dl_interceptors: list[DownlinkInterceptor] = []
        self._ul_interceptors: list[UplinkInterceptor] = []
        self._bind_listeners: list[Callable[[int, "UserEquipment"], None]] = []
        self._rng = sim.rng.stream("channel")
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.frames_duplicated = 0

    # -- topology ----------------------------------------------------------

    def attach_du(self, du: UplinkSink) -> None:
        self._du = du

    def attach_ue(self, ue: "UserEquipment") -> None:
        """Register a UE camped on this cell (receives broadcasts)."""
        if ue not in self._attached_ues:
            self._attached_ues.append(ue)

    def bind_rnti(self, rnti: int, ue: "UserEquipment") -> None:
        """Record which UE a downlink RNTI addresses (set by the DU)."""
        self._rnti_to_ue[rnti] = ue
        for listener in self._bind_listeners:
            listener(rnti, ue)

    def add_bind_listener(self, fn: Callable[[int, "UserEquipment"], None]) -> None:
        """Observe RNTI->UE bindings (used for attack ground truth)."""
        self._bind_listeners.append(fn)

    def unbind_rnti(self, rnti: int) -> None:
        self._rnti_to_ue.pop(rnti, None)

    def ue_for_rnti(self, rnti: int) -> Optional["UserEquipment"]:
        return self._rnti_to_ue.get(rnti)

    # -- MiTM hooks --------------------------------------------------------

    def add_downlink_interceptor(self, fn: DownlinkInterceptor) -> None:
        self._dl_interceptors.append(fn)

    def add_uplink_interceptor(self, fn: UplinkInterceptor) -> None:
        self._ul_interceptors.append(fn)

    def remove_downlink_interceptor(self, fn: DownlinkInterceptor) -> None:
        self._dl_interceptors.remove(fn)

    def remove_uplink_interceptor(self, fn: UplinkInterceptor) -> None:
        self._ul_interceptors.remove(fn)

    # -- transmission ------------------------------------------------------

    def _delay(self) -> float:
        return self.config.latency_s + self._rng.uniform(0, self.config.jitter_s)

    def uplink(self, ue: "UserEquipment", rnti: Optional[int], message: Message) -> None:
        """UE transmits an uplink RRC frame (rnti None = initial access)."""
        from repro.ran.rrc import RrcSetupRequest

        if (
            isinstance(message, RrcSetupRequest)
            and self._rng.random() < self.config.setup_loss_prob
        ):
            self.frames_dropped += 1
            return
        for interceptor in self._ul_interceptors:
            replaced = interceptor(ue, rnti, message)
            if replaced is None:
                self.frames_dropped += 1
                return
            message = replaced
        self._deliver_uplink(ue, rnti, message)
        if self._rng.random() < self.config.duplicate_prob:
            self.frames_duplicated += 1
            self._deliver_uplink(ue, rnti, message)

    def inject_uplink(self, victim: "UserEquipment", rnti: Optional[int], message: Message) -> None:
        """Attacker overshadows the uplink: the DU receives ``message`` as if
        ``victim`` sent it. Bypasses interceptors (the attacker *is* the MiTM)."""
        self._deliver_uplink(victim, rnti, message)

    def _deliver_uplink(self, ue: "UserEquipment", rnti: Optional[int], message: Message) -> None:
        if self._du is None:
            raise RuntimeError("no DU attached to channel")
        du = self._du
        self.frames_delivered += 1
        self.sim.schedule(
            self._delay(), lambda: du.on_uplink(ue, rnti, message), name="channel.ul"
        )

    def broadcast(self, message: Message) -> None:
        """Deliver a broadcast frame (e.g. Paging) to every camped UE.

        Delivered with RNTI 0 — connected UEs ignore it (their dedicated
        RNTI differs); idle UEs process it."""
        for ue in self._attached_ues:
            self.frames_delivered += 1
            self.sim.schedule(
                self._delay(),
                lambda u=ue: u.on_downlink(0, message),
                name="channel.bcast",
            )

    def downlink(self, rnti: int, message: Message) -> None:
        """DU transmits a downlink RRC frame addressed by RNTI."""
        for interceptor in self._dl_interceptors:
            replaced = interceptor(rnti, message)
            if replaced is None:
                self.frames_dropped += 1
                return
            message = replaced
        ue = self._rnti_to_ue.get(rnti)
        if ue is None:
            self.frames_dropped += 1
            return
        self.frames_delivered += 1
        self.sim.schedule(
            self._delay(), lambda: ue.on_downlink(rnti, message), name="channel.dl"
        )
        if self._rng.random() < self.config.duplicate_prob:
            self.frames_duplicated += 1
            self.sim.schedule(
                self._delay(), lambda: ue.on_downlink(rnti, message), name="channel.dl.dup"
            )
