"""Byte-level packet capture of the F1AP/NGAP interfaces.

The paper: *"we instrument the F1AP and NGAP interface to obtain pcap
streams, which are further parsed into MobiFlow security telemetry formats."*
This module is that capture substrate: every envelope crossing F1 or NG is
recorded as raw TLV bytes with a timestamp and interface tag; the telemetry
collector (:mod:`repro.telemetry.collector`) parses records back into
structured events, exercising a real decode path.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from typing import Iterator

from repro.ran.messages import Message

_RECORD_MAGIC = 0x6F5C
_IFACE_CODES = {"F1AP": 1, "NGAP": 2}
_IFACE_NAMES = {code: name for name, code in _IFACE_CODES.items()}


class PcapError(ValueError):
    """Raised on malformed capture data."""


@dataclass(frozen=True)
class CaptureRecord:
    """One captured packet: when, where, and the raw bytes."""

    timestamp: float
    interface: str
    payload: bytes

    def decode(self) -> Message:
        """Parse the raw payload back into its message object."""
        return Message.from_wire(self.payload)


class PcapStream:
    """An in-memory, serializable stream of :class:`CaptureRecord`.

    ``to_bytes``/``from_bytes`` round-trip through a pcap-like binary
    framing (magic, interface code, timestamp, length, payload) so datasets
    can be persisted to disk exactly like the paper's 2.5 MB of pcap files.
    """

    def __init__(self) -> None:
        self._records: list[CaptureRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CaptureRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[CaptureRecord]:
        return list(self._records)

    def capture(self, timestamp: float, interface: str, message: Message) -> CaptureRecord:
        """Record ``message`` crossing ``interface`` at ``timestamp``."""
        if interface not in _IFACE_CODES:
            raise PcapError(f"unknown interface {interface!r}")
        record = CaptureRecord(
            timestamp=timestamp, interface=interface, payload=message.to_wire()
        )
        self._records.append(record)
        return record

    def extend(self, other: "PcapStream") -> None:
        self._records.extend(other._records)

    def byte_size(self) -> int:
        """Total payload bytes captured (for dataset-size reporting)."""
        return sum(len(record.payload) for record in self._records)

    def to_bytes(self) -> bytes:
        out = io.BytesIO()
        for record in self._records:
            out.write(
                struct.pack(
                    ">HBdI",
                    _RECORD_MAGIC,
                    _IFACE_CODES[record.interface],
                    record.timestamp,
                    len(record.payload),
                )
            )
            out.write(record.payload)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "PcapStream":
        stream = cls()
        offset = 0
        header = struct.Struct(">HBdI")
        while offset < len(data):
            if offset + header.size > len(data):
                raise PcapError("truncated record header")
            magic, iface_code, timestamp, length = header.unpack_from(data, offset)
            if magic != _RECORD_MAGIC:
                raise PcapError(f"bad record magic 0x{magic:04x} at offset {offset}")
            iface = _IFACE_NAMES.get(iface_code)
            if iface is None:
                raise PcapError(f"unknown interface code {iface_code}")
            offset += header.size
            end = offset + length
            if end > len(data):
                raise PcapError("truncated record payload")
            stream._records.append(
                CaptureRecord(timestamp=timestamp, interface=iface, payload=data[offset:end])
            )
            offset = end
        return stream
