"""F1 Application Protocol messages between the DU and CU (TS 38.473).

The paper's RIC agent instruments F1AP to extract telemetry, so these
envelopes carry exactly the fields the MobiFlow collector parses: the UE's
C-RNTI, the DU/CU UE identifiers, and the RRC message container (the encoded
RRC PDU).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ran.messages import Direction, Message, Protocol


@dataclass
class F1InitialUlRrcMessageTransfer(Message):
    """DU -> CU: first uplink RRC message of a new UE (carries C-RNTI)."""

    NAME = "F1InitialULRRCMessageTransfer"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.UPLINK

    gnb_du_ue_id: int = 0
    c_rnti: int = 0
    rrc_container: bytes = b""


@dataclass
class F1UlRrcMessageTransfer(Message):
    """DU -> CU: subsequent uplink RRC message for an established UE."""

    NAME = "F1ULRRCMessageTransfer"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.UPLINK

    gnb_du_ue_id: int = 0
    gnb_cu_ue_id: int = 0
    rrc_container: bytes = b""


@dataclass
class F1DlRrcMessageTransfer(Message):
    """CU -> DU: downlink RRC message to forward over the air."""

    NAME = "F1DLRRCMessageTransfer"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.DOWNLINK

    gnb_du_ue_id: int = 0
    gnb_cu_ue_id: int = 0
    rrc_container: bytes = b""


@dataclass
class F1Paging(Message):
    """CU -> DU: page an idle UE over the cell (broadcast on the radio)."""

    NAME = "F1Paging"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.DOWNLINK

    s_tmsi: int = 0


@dataclass
class F1UeContextSetupRequest(Message):
    """CU -> DU: establish the UE context (bearers) at the DU."""

    NAME = "F1UEContextSetupRequest"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.DOWNLINK

    gnb_du_ue_id: int = 0
    gnb_cu_ue_id: int = 0


@dataclass
class F1UeContextSetupResponse(Message):
    """DU -> CU: UE context established."""

    NAME = "F1UEContextSetupResponse"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.UPLINK

    gnb_du_ue_id: int = 0
    gnb_cu_ue_id: int = 0


@dataclass
class F1UeContextReleaseCommand(Message):
    """CU -> DU: tear down the UE context (frees the RNTI)."""

    NAME = "F1UEContextReleaseCommand"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.DOWNLINK

    gnb_du_ue_id: int = 0
    gnb_cu_ue_id: int = 0
    cause: str = "normal"


@dataclass
class F1UeContextReleaseComplete(Message):
    """DU -> CU: UE context released."""

    NAME = "F1UEContextReleaseComplete"
    PROTOCOL = Protocol.RRC
    DIRECTION = Direction.UPLINK

    gnb_du_ue_id: int = 0
    gnb_cu_ue_id: int = 0
