"""Template-cached construction of control-plane messages (repro.genfast).

Workload generators build the same handful of message shapes millions of
times — a benign registration flow is ten messages whose IEs differ only
in a field or two per UE. :class:`MessageTemplate` pays the dataclass
constructor (default resolution, enum handling) once per shape, then
stamps out instances by cloning the prototype's ``__dict__`` — and caches
the TLV wire bytes for builds with no overrides, skipping serialization
entirely for fully-fixed messages.

Templates produce objects indistinguishable from normally constructed
ones: same class, same field values, byte-identical ``to_wire()``. Classes
that define ``__post_init__`` (none of the RAN messages do today) fall
back to the normal constructor so validation hooks still run.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Type, TypeVar

from repro.ran.messages import Message, MessageError

M = TypeVar("M", bound=Message)


class MessageTemplate:
    """A reusable prototype for one message class with fixed IEs."""

    __slots__ = ("cls", "_fixed", "_base", "_field_set", "_fast", "_wire")

    def __init__(self, cls: Type[M], **fixed: Any) -> None:
        if not (isinstance(cls, type) and issubclass(cls, Message)):
            raise MessageError(f"{cls!r} is not a Message class")
        if not dataclasses.is_dataclass(cls):
            raise MessageError(f"{cls.__name__} is not a dataclass message")
        self.cls: Type[M] = cls
        self._fixed = dict(fixed)
        # The prototype goes through the real constructor, so unknown
        # kwargs and missing required fields fail here, once, loudly.
        prototype = cls(**fixed)
        self._base: Dict[str, Any] = dict(prototype.__dict__)
        self._field_set = frozenset(self._base)
        # __post_init__ may compute state the dict-clone would skip; fall
        # back to the constructor for such classes.
        self._fast = not hasattr(cls, "__post_init__")
        self._wire: bytes = prototype.to_wire()

    def build(self, **overrides: Any) -> M:
        """Instantiate the template, optionally overriding some IEs."""
        if not self._fast:
            return self.cls(**{**self._fixed, **overrides})
        if overrides and not self._field_set.issuperset(overrides):
            unknown = sorted(set(overrides) - self._field_set)
            raise MessageError(
                f"{self.cls.__name__}: unknown template override(s) {unknown}"
            )
        message: M = object.__new__(self.cls)
        message.__dict__.update(self._base)
        if overrides:
            message.__dict__.update(overrides)
        return message

    def wire_bytes(self) -> bytes:
        """TLV bytes of the fixed shape (``build().to_wire()``), cached."""
        return self._wire
