"""Key-value wire encoding of MobiFlow records for E2 reporting.

Paper §3.1: *"the telemetry can be encoded as (key, value) data"* inside the
extended E2SM-KPM report. Only non-null fields are encoded, keeping the
indication payload compact.
"""

from __future__ import annotations

from repro import wire
from repro.telemetry.batch import MobiFlowBatch
from repro.telemetry.mobiflow import MobiFlowRecord


def encode_record(record: MobiFlowRecord) -> bytes:
    """Encode one MobiFlow record as compact (key, value) TLV bytes."""
    return wire.encode_fast(record.to_wire_dict())


def decode_record(data: bytes) -> MobiFlowRecord:
    """Inverse of :func:`encode_record`."""
    payload = wire.decode(data)
    if not isinstance(payload, dict):
        raise wire.WireError("MobiFlow KV payload is not a dict")
    return MobiFlowRecord.from_dict(payload)


def encode_batch(records: list[MobiFlowRecord]) -> bytes:
    """Encode a telemetry batch (one E2 indication per report interval).

    Runs through :func:`repro.wire.encode_fast` — byte-identical to the
    reference encoder, single-pass with interned field-name encodings.
    """
    return wire.encode_fast([record.to_wire_dict() for record in records])


def decode_batch(data: bytes) -> list[MobiFlowRecord]:
    """Inverse of :func:`encode_batch`."""
    payload = wire.decode(data)
    if not isinstance(payload, list):
        raise wire.WireError("MobiFlow batch payload is not a list")
    return [MobiFlowRecord.from_dict(item) for item in payload]


# -- columnar batches (repro.genfast) -----------------------------------------
#
# The per-record batch encoding re-states every field name in every record.
# The columnar encoding pays for each name once per batch and ships the
# string categories as per-batch vocabularies plus small-int id columns.
# Contract: decode_batch_columnar(encode_batch_columnar(b)).to_records()
# equals b.to_records() field for field — so re-encoding the decoded batch
# through the seed per-record codec reproduces the seed bytes exactly.


def encode_batch_columnar(batch: MobiFlowBatch) -> bytes:
    """Encode a columnar MobiFlow batch as one struct-of-arrays TLV value."""
    columns, meta = batch.to_columns()
    return wire.encode_columnar(columns, meta)


def decode_batch_columnar(data: bytes) -> MobiFlowBatch:
    """Inverse of :func:`encode_batch_columnar`."""
    columns, meta, n = wire.decode_columnar(data)
    return MobiFlowBatch.from_columns(columns, meta, n)
