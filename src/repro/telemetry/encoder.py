"""Key-value wire encoding of MobiFlow records for E2 reporting.

Paper §3.1: *"the telemetry can be encoded as (key, value) data"* inside the
extended E2SM-KPM report. Only non-null fields are encoded, keeping the
indication payload compact.
"""

from __future__ import annotations

from repro import wire
from repro.telemetry.mobiflow import MobiFlowRecord


def encode_record(record: MobiFlowRecord) -> bytes:
    """Encode one MobiFlow record as compact (key, value) TLV bytes."""
    return wire.encode_fast(record.to_wire_dict())


def decode_record(data: bytes) -> MobiFlowRecord:
    """Inverse of :func:`encode_record`."""
    payload = wire.decode(data)
    if not isinstance(payload, dict):
        raise wire.WireError("MobiFlow KV payload is not a dict")
    return MobiFlowRecord.from_dict(payload)


def encode_batch(records: list[MobiFlowRecord]) -> bytes:
    """Encode a telemetry batch (one E2 indication per report interval).

    Runs through :func:`repro.wire.encode_fast` — byte-identical to the
    reference encoder, single-pass with interned field-name encodings.
    """
    return wire.encode_fast([record.to_wire_dict() for record in records])


def decode_batch(data: bytes) -> list[MobiFlowRecord]:
    """Inverse of :func:`encode_batch`."""
    payload = wire.decode(data)
    if not isinstance(payload, list):
        raise wire.WireError("MobiFlow batch payload is not a list")
    return [MobiFlowRecord.from_dict(item) for item in payload]
