"""Telemetry and capture persistence.

Datasets are the paper's currency ("In support of open science, we have
released the source code and datasets"). Two durable formats:

- ``.pcap``-like capture files — :class:`~repro.ran.pcap.PcapStream`'s own
  binary framing (raw F1AP/NGAP bytes, re-parseable by the collector);
- ``.mfl`` MobiFlow series files — the parsed telemetry entries in the
  same KV TLV encoding the E2 reports use.
"""

from __future__ import annotations

import pathlib
from typing import Union

from repro.ran.pcap import PcapStream
from repro.telemetry.encoder import decode_batch, encode_batch
from repro.telemetry.mobiflow import TelemetrySeries

PathLike = Union[str, pathlib.Path]

_MFL_MAGIC = b"MFL1"


def save_pcap(stream: PcapStream, path: PathLike) -> int:
    """Write a capture to disk; returns bytes written."""
    data = stream.to_bytes()
    pathlib.Path(path).write_bytes(data)
    return len(data)


def load_pcap(path: PathLike) -> PcapStream:
    return PcapStream.from_bytes(pathlib.Path(path).read_bytes())


def save_series(series: TelemetrySeries, path: PathLike) -> int:
    """Write a MobiFlow telemetry series to disk; returns bytes written."""
    data = _MFL_MAGIC + encode_batch(series.records)
    pathlib.Path(path).write_bytes(data)
    return len(data)


def load_series(path: PathLike) -> TelemetrySeries:
    data = pathlib.Path(path).read_bytes()
    if not data.startswith(_MFL_MAGIC):
        raise ValueError(f"{path}: not a MobiFlow series file")
    return TelemetrySeries(decode_batch(data[len(_MFL_MAGIC) :]))
