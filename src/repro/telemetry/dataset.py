"""Dataset containers and the paper's labeling rules (§4, Dataset Labeling).

Rules:

1. every entry of a benign capture is benign;
2. in an attack capture, the ground-truth malicious entries ``x_i`` are
   identified (here: by the attack objects' predicates instead of manually),
   and every window that *contains* a malicious entry is malicious —
   ``{S_{i-N+1} .. S_i}`` for window size ``N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.telemetry.features import FeatureSpec, WindowedDataset
from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries


def label_records(
    series: TelemetrySeries, attacks: Iterable
) -> np.ndarray:
    """Per-record ground truth: entry is malicious if any attack claims it."""
    attacks = list(attacks)
    labels = np.zeros(len(series), dtype=bool)
    for i, record in enumerate(series):
        labels[i] = any(attack.is_malicious(record) for attack in attacks)
    return labels


def label_sequences(record_labels: np.ndarray, window: int) -> np.ndarray:
    """Window labels: a window is malicious iff it contains a malicious entry."""
    m = len(record_labels)
    if m < window:
        return np.zeros(0, dtype=bool)
    out = np.zeros(m - window + 1, dtype=bool)
    for i in range(m - window + 1):
        out[i] = bool(record_labels[i : i + window].any())
    return out


@dataclass
class LabeledDataset:
    """A telemetry series with ground truth and its windowed encoding."""

    name: str
    series: TelemetrySeries
    record_labels: np.ndarray
    windowed: WindowedDataset
    window_labels: np.ndarray
    # Which attack (by name) produced each malicious record, for reporting.
    record_attack: list[Optional[str]] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        name: str,
        series: TelemetrySeries,
        spec: FeatureSpec,
        window: int,
        attacks: Iterable = (),
        mode: str = "session",
        cache=None,
    ) -> "LabeledDataset":
        attacks = list(attacks)
        record_labels = label_records(series, attacks)
        record_attack: list[Optional[str]] = []
        for record in series:
            owner = next(
                (attack.name for attack in attacks if attack.is_malicious(record)), None
            )
            record_attack.append(owner)
        windowed = WindowedDataset.from_series(series, spec, window, mode=mode, cache=cache)
        window_labels = np.zeros(windowed.num_windows, dtype=bool)
        for i, indices in enumerate(windowed.window_records):
            window_labels[i] = bool(record_labels[list(indices)].any())
        return cls(
            name=name,
            series=series,
            record_labels=record_labels,
            windowed=windowed,
            window_labels=window_labels,
            record_attack=record_attack,
        )

    @property
    def num_windows(self) -> int:
        return self.windowed.num_windows

    @property
    def malicious_window_count(self) -> int:
        return int(self.window_labels.sum())

    def window_attack(self, window_index: int) -> Optional[str]:
        """Name of the attack touching a window (first malicious entry wins)."""
        for i in self.windowed.record_indices(window_index):
            if self.record_attack[i] is not None:
                return self.record_attack[i]
        return None

    def benign_windows(self) -> np.ndarray:
        return self.windowed.windows[~self.window_labels]

    def malicious_windows(self) -> np.ndarray:
        return self.windowed.windows[self.window_labels]
