"""MobiFlow security telemetry (paper §3.1, Table 1).

The data plane is instrumented to emit one multivariate record per control
message: ``x_i = [t_i, m_i, p_1..p_k]`` where ``m_i`` is the RRC/NAS message
and ``p_k`` are UE-specific parameters (RNTI, S-TMSI, SUPI, cipher/integrity
algorithm, establishment cause). This package holds the record schema, the
F1AP/NGAP parser that extracts records from capture streams, the key-value
wire encoding used for E2 reporting, the one-hot/sliding-window featurizer,
and the dataset containers with the paper's labeling rules.
"""

from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries
from repro.telemetry.collector import MobiFlowCollector
from repro.telemetry.encoder import decode_record, encode_record
from repro.telemetry.features import FeatureSpec, WindowedDataset
from repro.telemetry.dataset import LabeledDataset, label_sequences

__all__ = [
    "MobiFlowRecord",
    "TelemetrySeries",
    "MobiFlowCollector",
    "encode_record",
    "decode_record",
    "FeatureSpec",
    "WindowedDataset",
    "LabeledDataset",
    "label_sequences",
]
