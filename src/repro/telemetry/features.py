"""Featurization of MobiFlow telemetry for the unsupervised models (§3.2).

The paper one-hot encodes the categorical variables of each telemetry entry
and slides a window of size ``N`` over the series, so each model input is a
sequence ``S_i = {x_i .. x_{i+N-1}}`` flattened to a vector.

Per-entry features (all categorical, matching the paper's choice to use
"categorical features in the security telemetry ... including the control
messages and device identifiers such as UE's RNTI and TMSI"):

- message name (one-hot over the protocol vocabulary + "other"),
- link direction,
- establishment cause,
- ciphering / integrity algorithm identifiers,
- identifier-derived flags: fresh session start, temporary identity reused
  from a *different* session (the RNTI/TMSI relation features), permanent
  identity exposed in plaintext, message repeated back-to-back,
- inter-arrival-time bucket (captures flooding cadence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries

# Message vocabulary: the control-plane messages the collector emits.
DEFAULT_MESSAGE_VOCAB: tuple[str, ...] = (
    "RRCSetupRequest",
    "RRCSetup",
    "RRCSetupComplete",
    "RRCReject",
    "RRCSecurityModeCommand",
    "RRCSecurityModeComplete",
    "RRCSecurityModeFailure",
    "RRCReconfiguration",
    "RRCReconfigurationComplete",
    "RRCRelease",
    "MeasurementReport",
    "Paging",
    "RRCReestablishmentRequest",
    "RegistrationRequest",
    "AuthenticationRequest",
    "AuthenticationResponse",
    "AuthenticationFailure",
    "AuthenticationReject",
    "IdentityRequest",
    "IdentityResponse",
    "NASSecurityModeCommand",
    "NASSecurityModeComplete",
    "NASSecurityModeReject",
    "RegistrationAccept",
    "RegistrationComplete",
    "RegistrationReject",
    "ServiceRequest",
    "ServiceAccept",
    "ServiceReject",
    "ConfigurationUpdateCommand",
    "DeregistrationRequest",
    "DeregistrationAccept",
)

DEFAULT_CAUSE_VOCAB: tuple[str, ...] = (
    "emergency",
    "highPriorityAccess",
    "mt-Access",
    "mo-Signalling",
    "mo-Data",
    "mo-VoiceCall",
    "mo-SMS",
    "mps-PriorityAccess",
)

# Inter-arrival-time bucket upper bounds (seconds); last bucket is open.
DEFAULT_IAT_BUCKETS: tuple[float, ...] = (0.01, 0.05, 0.2, 1.0)

_ALG_SLOTS = 5  # NEA0..NEA3 / NIA0..NIA3 + "absent"

# Rate features: counts within a trailing window, clipped into buckets
# {0, 1, 2, 3+}. Connection floods (BTS DoS) land in the top bucket.
_RATE_WINDOW_S = 1.0
_RATE_SLOTS = 4

# Uses of one TMSI separated by less than this merge into one usage episode
# (covers RLC duplicates and T300 retries, which re-present the identity).
_TMSI_EPISODE_HORIZON_S = 1.0


@dataclass(frozen=True)
class FeatureSpec:
    """Defines the per-entry feature encoding. Frozen so a spec trained
    against stays byte-identical at inference time."""

    message_vocab: tuple[str, ...] = DEFAULT_MESSAGE_VOCAB
    cause_vocab: tuple[str, ...] = DEFAULT_CAUSE_VOCAB
    iat_buckets: tuple[float, ...] = DEFAULT_IAT_BUCKETS
    include_messages: bool = True
    include_identifiers: bool = True
    include_state: bool = True
    include_timing: bool = True
    include_rates: bool = True
    # Feature-group weights: security-relevant rare bits carry more signal
    # per dimension than the bulky message one-hot, so reconstruction /
    # prediction errors on them are amplified. Set both to 1.0 for an
    # unweighted encoding (ablation A3 covers this choice).
    identifier_weight: float = 3.0
    state_weight: float = 2.0

    @property
    def dim(self) -> int:
        dim = 0
        if self.include_messages:
            dim += len(self.message_vocab) + 1  # + other
            dim += 2  # direction
        if self.include_state:
            dim += len(self.cause_vocab) + 1  # + absent
            dim += 2 * _ALG_SLOTS
        if self.include_identifiers:
            dim += 4  # new_session, tmsi_reused, identity_exposed, repeated
        if self.include_timing:
            dim += len(self.iat_buckets) + 1
        if self.include_rates:
            dim += 2 * _RATE_SLOTS  # setup-request rate, session churn
        return dim

    def feature_names(self) -> list[str]:
        names: list[str] = []
        if self.include_messages:
            names += [f"msg={m}" for m in self.message_vocab] + ["msg=<other>"]
            names += ["dir=UL", "dir=DL"]
        if self.include_state:
            names += [f"cause={c}" for c in self.cause_vocab] + ["cause=<absent>"]
            names += [f"cipher={i}" for i in range(4)] + ["cipher=<absent>"]
            names += [f"integrity={i}" for i in range(4)] + ["integrity=<absent>"]
        if self.include_identifiers:
            names += ["new_session", "tmsi_reused", "identity_exposed", "repeated_msg"]
        if self.include_timing:
            bounds = [f"iat<{b}" for b in self.iat_buckets] + ["iat>=last"]
            names += bounds
        if self.include_rates:
            names += [f"setup_rate={i}" for i in ("0", "1", "2", "3+")]
            names += [f"session_churn={i}" for i in ("0", "1", "2", "3+")]
        if len(names) != self.dim:
            raise AssertionError("feature_names out of sync with dim")
        return names

    # -- encoding ------------------------------------------------------------

    def streaming_encoder(self) -> "StreamingEncoder":
        """A stateful per-record encoder for live pipelines."""
        return StreamingEncoder(self)

    def encode_series(
        self, series: TelemetrySeries, *, vectorized: bool = False
    ) -> np.ndarray:
        """Encode a telemetry series to an ``[M, dim]`` float32 matrix.

        The identifier-relation flags are computed causally: each entry only
        looks at entries before it, so live inference (via
        :meth:`streaming_encoder`) sees exactly the same features.

        ``vectorized=True`` (repro.genfast) computes the same matrix in one
        numpy pass instead of the per-entry loop — bit-identical by the
        equality contract in :mod:`repro.telemetry.vectorized`.
        """
        if vectorized:
            from repro.telemetry.vectorized import encode_series as _encode_vectorized

            return _encode_vectorized(self, series)
        encoder = self.streaming_encoder()
        records = series.records
        out = np.zeros((len(records), self.dim), dtype=np.float32)
        for row, record in enumerate(records):
            out[row] = encoder.push(record)
        return out


class StreamingEncoder:
    """Stateful record-at-a-time featurizer (the live-inference path).

    State tracked across pushes: sessions seen, per-TMSI usage episodes
    (uses separated by more than the horizon start a new episode, so
    retransmissions and T300 retries merge; benign GUTI reuse spans two
    episodes, replay attacks three or more), recent setup-request and
    session-churn rate windows, and the previous record.
    """

    def __init__(self, spec: FeatureSpec) -> None:
        self.spec = spec
        self._seen_sessions: set[int] = set()
        self._tmsi_episodes: dict[int, tuple] = {}
        self._recent_setups: list[float] = []
        self._recent_sessions: list[tuple[float, int]] = []
        self._churn_seen: set[int] = set()
        self._prev: Optional[MobiFlowRecord] = None

    def push(self, record: MobiFlowRecord) -> np.ndarray:
        """Encode one record, updating the causal state."""
        spec = self.spec
        row = np.zeros(spec.dim, dtype=np.float32)
        col = 0
        if spec.include_messages:
            try:
                idx = spec.message_vocab.index(record.msg)
            except ValueError:
                idx = len(spec.message_vocab)
            row[col + idx] = 1.0
            col += len(spec.message_vocab) + 1
            row[col + (0 if record.direction == "UL" else 1)] = 1.0
            col += 2
        if spec.include_state:
            if record.establishment_cause is None:
                row[col + len(spec.cause_vocab)] = 1.0
            else:
                try:
                    cause_idx = spec.cause_vocab.index(record.establishment_cause)
                except ValueError:
                    cause_idx = len(spec.cause_vocab)
                row[col + cause_idx] = 1.0
            col += len(spec.cause_vocab) + 1
            cipher = record.cipher_alg if record.cipher_alg is not None else 4
            weight = 1.0 if cipher == 4 else spec.state_weight
            row[col + min(cipher, 4)] = weight
            col += _ALG_SLOTS
            integ = record.integrity_alg if record.integrity_alg is not None else 4
            weight = 1.0 if integ == 4 else spec.state_weight
            row[col + min(integ, 4)] = weight
            col += _ALG_SLOTS
        if spec.include_identifiers:
            new_session = record.session_id not in self._seen_sessions
            self._seen_sessions.add(record.session_id)
            tmsi_reused = False
            if record.s_tmsi is not None:
                episode = self._tmsi_episodes.get(record.s_tmsi)
                if episode is None:
                    count = 1
                else:
                    count, last_seen = episode
                    if record.timestamp - last_seen > _TMSI_EPISODE_HORIZON_S:
                        count += 1
                self._tmsi_episodes[record.s_tmsi] = (count, record.timestamp)
                tmsi_reused = count >= 3
            row[col + 0] = float(new_session)
            row[col + 1] = spec.identifier_weight * float(tmsi_reused)
            row[col + 2] = spec.identifier_weight * float(
                record.exposes_permanent_identity()
            )
            row[col + 3] = float(self._prev is not None and self._prev.msg == record.msg)
            col += 4
        if spec.include_timing:
            iat = (
                record.timestamp - self._prev.timestamp
                if self._prev is not None
                else 0.0
            )
            bucket = len(spec.iat_buckets)
            for i, bound in enumerate(spec.iat_buckets):
                if iat < bound:
                    bucket = i
                    break
            row[col + bucket] = 1.0
            col += len(spec.iat_buckets) + 1
        if spec.include_rates:
            horizon = record.timestamp - _RATE_WINDOW_S
            self._recent_setups[:] = [t for t in self._recent_setups if t > horizon]
            self._recent_sessions[:] = [
                (t, s) for t, s in self._recent_sessions if t > horizon
            ]
            if record.msg == "RRCSetupRequest":
                self._recent_setups.append(record.timestamp)
            if record.session_id and record.session_id not in self._churn_seen:
                self._churn_seen.add(record.session_id)
                self._recent_sessions.append((record.timestamp, record.session_id))
            row[col + min(len(self._recent_setups), _RATE_SLOTS - 1)] = 1.0
            col += _RATE_SLOTS
            row[col + min(len(self._recent_sessions), _RATE_SLOTS - 1)] = 1.0
            col += _RATE_SLOTS
        self._prev = record
        return row


def sliding_windows(matrix: np.ndarray, window: int) -> np.ndarray:
    """Flattened sliding windows: ``[M, D] -> [M-N+1, N*D]``.

    For a C-contiguous ``matrix`` this is **zero-copy**: the result is a
    read-only strided view whose row ``i`` aliases source rows
    ``i..i+N-1``, so the N-record overlap between consecutive windows is
    shared memory rather than duplicated (a window matrix would otherwise
    be ~N times the size of the per-record matrix). Aliasing contract:
    mutating ``matrix`` changes every window that covers the mutated rows,
    and the view itself rejects writes — callers that need an independent,
    writable buffer must ``.copy()``. Non-contiguous inputs fall back to
    the copying path and return a plain owned array.
    """
    if window < 1:
        raise ValueError("window size must be >= 1")
    m, dim = matrix.shape
    if m < window:
        return np.zeros((0, window * dim), dtype=matrix.dtype)
    if matrix.flags.c_contiguous:
        item = matrix.itemsize
        return np.lib.stride_tricks.as_strided(
            matrix,
            shape=(m - window + 1, window * dim),
            strides=(dim * item, item),
            writeable=False,
        )
    return np.stack(
        [matrix[i : i + window].reshape(-1) for i in range(m - window + 1)]
    )


def session_windows(
    session_ids: Sequence[int], per_record: np.ndarray, window: int, dim: int
) -> tuple[np.ndarray, list]:
    """Session-mode window assembly shared by the per-record and columnar
    paths: slide within each nonzero session's record sequence (stream
    order), one left-padded window per short session, sessions in sorted-id
    order. Returns ``(windows, window_records)``."""
    groups: dict[int, list[int]] = {}
    for index, session_id in enumerate(session_ids):
        if session_id == 0:
            continue  # untracked records (no RNTI correlation)
        groups.setdefault(session_id, []).append(index)
    # One row per sliding position, one per short session: sized up
    # front so rows land in the final matrix (no stack of copies).
    total = sum(max(len(indices) - window + 1, 1) for indices in groups.values())
    windows = np.zeros((total, window * dim), dtype=per_record.dtype)
    window_records: list = []
    row = 0
    for session_id in sorted(groups):
        indices = groups[session_id]
        if len(indices) >= window:
            for start in range(len(indices) - window + 1):
                chosen = indices[start : start + window]
                np.take(per_record, chosen, axis=0, out=windows[row].reshape(window, dim))
                window_records.append(tuple(chosen))
                row += 1
        else:
            # Short (possibly abandoned) session: one left-padded window.
            windows[row].reshape(window, dim)[window - len(indices) :] = (
                per_record[indices]
            )
            window_records.append(tuple(indices))
            row += 1
    return windows, window_records


@dataclass
class WindowedDataset:
    """Sliding-window view of a telemetry series, ready for the models.

    Two windowing modes:

    - ``"session"`` (default, what MobiWatch deploys): windows slide within
      each UE session's record sequence, so the models learn the protocol
      grammar of a connection. A session shorter than the window — e.g. a
      connection abandoned at the authentication stage — yields a single
      zero-left-padded window, making *uncompleted* connections (the BTS DoS
      signature) first-class inputs. Per-record features are still computed
      over the global time-ordered stream, so cross-session relations (TMSI
      reuse, connection rates) survive sessionization.
    - ``"global"``: windows slide over the raw interleaved stream (kept as
      an ablation).

    ``window_records[i]`` lists the source-record indices each window covers.
    """

    spec: FeatureSpec
    window: int
    windows: np.ndarray  # [num_windows, window * spec.dim]
    per_record: np.ndarray  # [M, spec.dim]
    window_records: list  # list[tuple[int, ...]] source indices per window
    mode: str = "session"

    @classmethod
    def from_series(
        cls,
        series: TelemetrySeries,
        spec: FeatureSpec,
        window: int,
        mode: str = "session",
        *,
        cache=None,
        vectorized: bool = False,
    ) -> "WindowedDataset":
        """Encode and window a series.

        ``cache`` (optional) is a :class:`repro.trainfast.cache.DatasetCache`
        (or any object with the same ``windowed`` method): datasets are then
        memoized on the series' *content* digest, so repeated encodes of the
        same capture — e.g. across ablation-sweep configurations — are free.
        Cached arrays are read-only; copy before mutating.

        ``vectorized`` (repro.genfast) routes the encode through the
        one-pass vectorized featurizer — bit-identical output, one numpy
        pass instead of the per-entry loop. Ignored on the cache path (a
        cache hit never re-encodes; a miss uses the cache's own builder).
        """
        if mode not in ("session", "global"):
            raise ValueError(f"mode must be 'session' or 'global', got {mode!r}")
        if cache is not None:
            return cache.windowed(series, spec, window, mode, builder=cls._assemble)
        return cls._assemble(
            series, spec, window, mode, spec.encode_series(series, vectorized=vectorized)
        )

    @classmethod
    def _assemble(
        cls,
        series: TelemetrySeries,
        spec: FeatureSpec,
        window: int,
        mode: str,
        per_record: np.ndarray,
    ) -> "WindowedDataset":
        """Window an already-encoded per-record matrix (see from_series)."""
        if mode == "global":
            windows = sliding_windows(per_record, window)
            window_records = [
                tuple(range(i, i + window)) for i in range(windows.shape[0])
            ]
            return cls(
                spec=spec,
                window=window,
                windows=windows,
                per_record=per_record,
                window_records=window_records,
                mode=mode,
            )
        # Session mode: group record indices per session, in stream order.
        windows, window_records = session_windows(
            [record.session_id for record in series], per_record, window, spec.dim
        )
        return cls(
            spec=spec,
            window=window,
            windows=windows,
            per_record=per_record,
            window_records=window_records,
            mode=mode,
        )

    @property
    def num_windows(self) -> int:
        return self.windows.shape[0]

    def record_indices(self, window_index: int) -> tuple:
        """Source-record indices one window covers."""
        if not 0 <= window_index < self.num_windows:
            raise IndexError(window_index)
        return self.window_records[window_index]

    def record_range(self, window_index: int) -> tuple[int, int]:
        """Source-record index range ``[start, end)`` of one window."""
        indices = self.record_indices(window_index)
        return indices[0], indices[-1] + 1
