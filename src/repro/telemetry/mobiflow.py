"""MobiFlow record schema — the paper's Table 1 telemetry.

Each record is one telemetry entry ``x_i`` collected at one control-message
transmission. Categories:

- **Message**: the RRC or NAS message name and direction.
- **Identifier**: RNTI, 5G-S-TMSI, SUCI/SUPI as observed on the wire.
- **State**: negotiated ciphering/integrity algorithms, RRC establishment
  cause.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class MobiFlowRecord:
    """One telemetry entry ``x_i`` (paper §3.1)."""

    timestamp: float
    msg: str
    protocol: str  # "RRC" | "NAS"
    direction: str  # "UL" | "DL"
    session_id: int = 0
    rnti: Optional[int] = None
    s_tmsi: Optional[int] = None
    suci: Optional[str] = None
    supi: Optional[str] = None  # plaintext permanent identifier, if exposed
    cipher_alg: Optional[int] = None
    integrity_alg: Optional[int] = None
    establishment_cause: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in _FIELD_NAMES}

    def to_wire_dict(self) -> dict[str, Any]:
        """Non-null fields only — the compact E2 (key, value) payload."""
        out = {}
        for name in _FIELD_NAMES:
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MobiFlowRecord":
        if not _FIELD_NAME_SET.issuperset(data):
            raise ValueError(
                f"unknown MobiFlow fields: {sorted(set(data) - _FIELD_NAME_SET)}"
            )
        return cls(**data)

    def exposes_permanent_identity(self) -> bool:
        """True when the permanent subscriber identity is visible in clear."""
        if self.supi:
            return True
        return bool(self.suci and self.suci.startswith("suci-null-"))


# Schema snapshot, computed once: the per-record encode path runs for every
# telemetry entry and must not pay dataclass reflection each call.
_FIELD_NAMES: tuple[str, ...] = tuple(f.name for f in dataclass_fields(MobiFlowRecord))
_FIELD_NAME_SET: frozenset[str] = frozenset(_FIELD_NAMES)


class TelemetrySeries:
    """An ordered multivariate time series ``tau = {x_1 .. x_M}``."""

    def __init__(self, records: Optional[list[MobiFlowRecord]] = None) -> None:
        self._records: list[MobiFlowRecord] = list(records or [])

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[MobiFlowRecord]:
        return iter(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TelemetrySeries(self._records[index])
        return self._records[index]

    @property
    def records(self) -> list[MobiFlowRecord]:
        return list(self._records)

    def append(self, record: MobiFlowRecord) -> None:
        if self._records and record.timestamp < self._records[-1].timestamp:
            raise ValueError(
                "telemetry must be appended in timestamp order "
                f"({record.timestamp} < {self._records[-1].timestamp})"
            )
        self._records.append(record)

    def extend(self, records: Iterator[MobiFlowRecord]) -> None:
        for record in records:
            self.append(record)

    def sessions(self) -> dict[int, list[MobiFlowRecord]]:
        """Group records by session id, preserving order."""
        out: dict[int, list[MobiFlowRecord]] = {}
        for record in self._records:
            out.setdefault(record.session_id, []).append(record)
        return out

    def message_names(self) -> list[str]:
        return [record.msg for record in self._records]

    def time_span(self) -> float:
        if len(self._records) < 2:
            return 0.0
        return self._records[-1].timestamp - self._records[0].timestamp
