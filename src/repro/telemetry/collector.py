"""F1AP/NGAP -> MobiFlow parsing (the paper's RIC-agent extraction logic).

The collector consumes capture records from the F1 and NG interfaces and
produces the per-message MobiFlow telemetry entries. It can run in two
modes:

- **offline**: parse a recorded :class:`~repro.ran.pcap.PcapStream` (how the
  paper builds its datasets from pcap files);
- **live**: attach :meth:`on_capture` as a link tap, and subscribe to be
  notified per record (how the E2 RIC agent streams telemetry at run time).

Emission policy: RRC messages are extracted from F1AP containers; NAS
messages are extracted from NGAP transports (each NAS PDU crosses NG
exactly once, so nothing is double-counted). Pure transport wrappers
(UL/DLInformationTransfer, the F1/NG envelopes themselves) do not produce
entries — matching the message sequences shown in the paper's Figure 2.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.ran import f1ap, ngap
from repro.ran.messages import Message
from repro.ran import nas as nas_messages
from repro.ran import rrc as rrc_messages
from repro.ran.pcap import PcapStream
from repro.telemetry.batch import MobiFlowBatch, MobiFlowBatchBuilder
from repro.telemetry.mobiflow import MobiFlowRecord, TelemetrySeries

Subscriber = Callable[[MobiFlowRecord], None]
BatchSubscriber = Callable[[MobiFlowBatch], None]

# RRC messages that are transport wrappers only (their NAS payload is
# collected from NGAP instead).
_RRC_WRAPPERS = {
    rrc_messages.RrcUlInformationTransfer,
    rrc_messages.RrcDlInformationTransfer,
}


def _tmsi_from_guti(guti: str) -> Optional[int]:
    try:
        return int(guti.rsplit("-", 1)[1], 16)
    except (IndexError, ValueError):
        return None


class MobiFlowCollector:
    """Stateful parser from interface captures to MobiFlow records."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.series = TelemetrySeries()
        self._subscribers: list[Subscriber] = []
        self._session_ids = itertools.count(1)
        # Offline parsers (pcap tooling) run without a simulation registry.
        metrics = metrics or MetricsRegistry()
        self._record_counters = {
            protocol: metrics.counter(
                "mobiflow.records_total", labels={"protocol": protocol}
            )
            for protocol in ("RRC", "NAS")
        }
        self._sessions_counter = metrics.counter(
            "mobiflow.sessions_total", help="sessions opened by the collector"
        )
        # Malformed GUTIs silently drop the TMSI identity feature; count
        # them so the blind spot is visible on the dashboard.
        self._guti_errors = metrics.counter(
            "collector.guti_parse_errors_total",
            help="GUTIs whose TMSI could not be parsed (identity feature dropped)",
        )
        # Columnar fast lane (repro.genfast): when enabled, records also
        # accumulate into a struct-of-arrays builder that flush_batch()
        # drains one MobiFlowBatch per capture flush.
        self._batch_builder: Optional[MobiFlowBatchBuilder] = None
        self._batch_subscribers: list[BatchSubscriber] = []
        # Wiring state learned from the envelopes.
        self._du_id_to_rnti: dict[int, int] = {}
        self._du_id_to_cu_id: dict[int, int] = {}
        self._cu_id_to_rnti: dict[int, int] = {}
        self._rnti_session: dict[int, int] = {}
        # Per-session state parameters (latest observed algorithms etc.).
        self._session_tmsi: dict[int, int] = {}

    def subscribe(self, fn: Subscriber) -> None:
        """Receive each MobiFlow record as it is produced (live mode)."""
        self._subscribers.append(fn)

    # -- columnar batch mode (repro.genfast) --------------------------------

    def enable_batch_mode(self) -> None:
        """Accumulate entries columnar for :meth:`flush_batch` draining."""
        if self._batch_builder is None:
            self._batch_builder = MobiFlowBatchBuilder()

    def subscribe_batches(self, fn: BatchSubscriber) -> None:
        """Receive each :meth:`flush_batch` batch (implies batch mode)."""
        self.enable_batch_mode()
        self._batch_subscribers.append(fn)

    @property
    def pending_batch_records(self) -> int:
        """Entries accumulated since the last flush (0 when mode is off)."""
        return len(self._batch_builder) if self._batch_builder is not None else 0

    def flush_batch(self) -> Optional[MobiFlowBatch]:
        """Drain the accumulated entries as one columnar batch.

        Returns ``None`` when batch mode is off or nothing accumulated;
        otherwise notifies the batch subscribers and returns the batch.
        """
        if self._batch_builder is None or not len(self._batch_builder):
            return None
        batch = self._batch_builder.flush()
        for subscriber in self._batch_subscribers:
            subscriber(batch)
        return batch

    # -- entry points -------------------------------------------------------

    def parse_stream(self, stream: PcapStream) -> TelemetrySeries:
        """Offline mode: parse a whole capture, return the telemetry series."""
        for record in stream:
            self.on_capture(record.timestamp, record.interface, record.decode())
        return self.series

    def on_capture(self, timestamp: float, interface: str, message: Message) -> None:
        """Live mode: handle one captured interface envelope."""
        if interface == "F1AP":
            self._on_f1(timestamp, message)
        elif interface == "NGAP":
            self._on_ng(timestamp, message)
        else:
            raise ValueError(f"unknown interface {interface!r}")

    # -- F1AP ------------------------------------------------------------------

    def _on_f1(self, timestamp: float, message: Message) -> None:
        if isinstance(message, f1ap.F1InitialUlRrcMessageTransfer):
            rnti = message.c_rnti
            self._du_id_to_rnti[message.gnb_du_ue_id] = rnti
            session = next(self._session_ids)
            self._sessions_counter.inc()
            self._rnti_session[rnti] = session
            rrc = Message.from_wire(message.rrc_container)
            self._emit_rrc(timestamp, rnti, rrc)
        elif isinstance(message, f1ap.F1UlRrcMessageTransfer):
            rnti = self._du_id_to_rnti.get(message.gnb_du_ue_id)
            if rnti is None:
                return
            rrc = Message.from_wire(message.rrc_container)
            self._emit_rrc(timestamp, rnti, rrc)
        elif isinstance(message, f1ap.F1Paging):
            # Broadcast paging: not tied to any connection (session 0).
            self._append(
                MobiFlowRecord(
                    timestamp=timestamp,
                    msg="Paging",
                    protocol="RRC",
                    direction="DL",
                    session_id=0,
                    s_tmsi=message.s_tmsi,
                )
            )
        elif isinstance(message, f1ap.F1DlRrcMessageTransfer):
            rnti = self._du_id_to_rnti.get(message.gnb_du_ue_id)
            if rnti is None:
                return
            self._du_id_to_cu_id[message.gnb_du_ue_id] = message.gnb_cu_ue_id
            self._cu_id_to_rnti[message.gnb_cu_ue_id] = rnti
            rrc = Message.from_wire(message.rrc_container)
            self._emit_rrc(timestamp, rnti, rrc)
        # F1 context management envelopes carry no UE control-plane telemetry.

    def _emit_rrc(self, timestamp: float, rnti: int, rrc: Message) -> None:
        if type(rrc) in _RRC_WRAPPERS:
            return
        session = self._rnti_session.get(rnti, 0)
        kwargs: dict = {}
        if isinstance(rrc, rrc_messages.RrcSetupRequest):
            kwargs["establishment_cause"] = rrc.establishment_cause.value
            if rrc.identity_is_tmsi:
                kwargs["s_tmsi"] = rrc.ue_identity
                self._session_tmsi[session] = rrc.ue_identity
        elif isinstance(rrc, rrc_messages.RrcSecurityModeCommand):
            kwargs["cipher_alg"] = int(rrc.cipher_alg)
            kwargs["integrity_alg"] = int(rrc.integrity_alg)
        self._append(
            MobiFlowRecord(
                timestamp=timestamp,
                msg=rrc.name,
                protocol="RRC",
                direction=rrc.direction.value,
                session_id=session,
                rnti=rnti,
                s_tmsi=kwargs.pop("s_tmsi", self._session_tmsi.get(session)),
                **kwargs,
            )
        )

    # -- NGAP ---------------------------------------------------------------------

    def _on_ng(self, timestamp: float, message: Message) -> None:
        if isinstance(message, ngap.NgInitialUeMessage):
            rnti = self._cu_id_to_rnti.get(message.ran_ue_id)
            self._emit_nas(timestamp, rnti, Message.from_wire(message.nas_pdu))
        elif isinstance(message, (ngap.NgUplinkNasTransport, ngap.NgDownlinkNasTransport)):
            rnti = self._cu_id_to_rnti.get(message.ran_ue_id)
            self._emit_nas(timestamp, rnti, Message.from_wire(message.nas_pdu))
        # Context setup/release and paging envelopes carry no NAS PDU.

    def _emit_nas(self, timestamp: float, rnti: Optional[int], nas: Message) -> None:
        session = self._rnti_session.get(rnti, 0) if rnti is not None else 0
        kwargs: dict = {}
        if isinstance(nas, nas_messages.RegistrationRequest):
            if nas.suci:
                kwargs["suci"] = nas.suci
            if nas.guti:
                tmsi = _tmsi_from_guti(nas.guti)
                if tmsi is not None:
                    kwargs["s_tmsi"] = tmsi
                    self._session_tmsi[session] = tmsi
                else:
                    self._guti_errors.inc()
        elif isinstance(nas, nas_messages.IdentityResponse):
            if nas.identity_type is nas_messages.IdentityType.SUPI:
                kwargs["supi"] = nas.identity_value
            elif nas.identity_type is nas_messages.IdentityType.SUCI:
                kwargs["suci"] = nas.identity_value
        elif isinstance(nas, nas_messages.NasSecurityModeCommand):
            kwargs["cipher_alg"] = int(nas.cipher_alg)
            kwargs["integrity_alg"] = int(nas.integrity_alg)
        elif isinstance(nas, nas_messages.RegistrationAccept):
            tmsi = _tmsi_from_guti(nas.guti)
            if tmsi is not None:
                kwargs["s_tmsi"] = tmsi
                self._session_tmsi[session] = tmsi
            else:
                self._guti_errors.inc()
        elif isinstance(nas, nas_messages.ServiceRequest):
            kwargs["s_tmsi"] = nas.s_tmsi
            self._session_tmsi[session] = nas.s_tmsi
        self._append(
            MobiFlowRecord(
                timestamp=timestamp,
                msg=nas.name,
                protocol="NAS",
                direction=nas.direction.value,
                session_id=session,
                rnti=rnti,
                s_tmsi=kwargs.pop("s_tmsi", self._session_tmsi.get(session)),
                **kwargs,
            )
        )

    def _append(self, record: MobiFlowRecord) -> None:
        self.series.append(record)
        counter = self._record_counters.get(record.protocol)
        if counter is not None:
            counter.inc()
        if self._batch_builder is not None:
            self._batch_builder.append(record)
        for subscriber in self._subscribers:
            subscriber(record)
