"""Columnar MobiFlow batches — struct-of-arrays telemetry (repro.genfast).

The seed pipeline moves telemetry as one :class:`MobiFlowRecord` object per
entry.  A :class:`MobiFlowBatch` holds the same entries struct-of-arrays:
numpy columns for timestamps/ids/algorithms, small per-batch vocabularies
for the string categories (message name, protocol, direction, establishment
cause) with int id columns gathered against them, and plain tuples for the
rare free-form identifier strings (SUCI/SUPI).

The representation is *exact*: ``MobiFlowBatch.from_records(rs).to_records()
== rs`` field for field, which is what lets the columnar wire path
(:mod:`repro.telemetry.encoder`) decode byte-identically to the seed
per-record stream, and the vectorized featurizer
(:mod:`repro.telemetry.vectorized`) match the seed encoder bit for bit.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro.telemetry.mobiflow import MobiFlowRecord

# Wire column names, in schema order. Nullable int columns travel as lists
# with None holes; vocab-id columns as small-int lists against the batch's
# own vocab lists (interned once per batch instead of once per record).
_WIRE_META_KEYS = ("msg_vocab", "protocol_vocab", "direction_vocab", "cause_vocab")


class _Interner:
    """Append-only string vocabulary: name -> dense id."""

    __slots__ = ("names", "_ids")

    def __init__(self) -> None:
        self.names: list[str] = []
        self._ids: dict[str, int] = {}

    def intern(self, name: str) -> int:
        ident = self._ids.get(name)
        if ident is None:
            ident = len(self.names)
            self._ids[name] = ident
            self.names.append(name)
        return ident


class MobiFlowBatch:
    """An immutable struct-of-arrays view of a MobiFlow record sequence."""

    __slots__ = (
        "timestamps",
        "msg_ids",
        "msg_vocab",
        "protocol_ids",
        "protocol_vocab",
        "direction_ids",
        "direction_vocab",
        "session_ids",
        "rnti",
        "rnti_present",
        "s_tmsi",
        "s_tmsi_present",
        "suci",
        "supi",
        "cipher_alg",
        "cipher_present",
        "integrity_alg",
        "integrity_present",
        "cause_ids",
        "cause_vocab",
        "_exposed",
    )

    def __init__(
        self,
        *,
        timestamps: np.ndarray,
        msg_ids: np.ndarray,
        msg_vocab: tuple[str, ...],
        protocol_ids: np.ndarray,
        protocol_vocab: tuple[str, ...],
        direction_ids: np.ndarray,
        direction_vocab: tuple[str, ...],
        session_ids: np.ndarray,
        rnti: np.ndarray,
        rnti_present: np.ndarray,
        s_tmsi: np.ndarray,
        s_tmsi_present: np.ndarray,
        suci: tuple[Optional[str], ...],
        supi: tuple[Optional[str], ...],
        cipher_alg: np.ndarray,
        cipher_present: np.ndarray,
        integrity_alg: np.ndarray,
        integrity_present: np.ndarray,
        cause_ids: np.ndarray,
        cause_vocab: tuple[str, ...],
    ) -> None:
        self.timestamps = timestamps
        self.msg_ids = msg_ids
        self.msg_vocab = msg_vocab
        self.protocol_ids = protocol_ids
        self.protocol_vocab = protocol_vocab
        self.direction_ids = direction_ids
        self.direction_vocab = direction_vocab
        self.session_ids = session_ids
        self.rnti = rnti
        self.rnti_present = rnti_present
        self.s_tmsi = s_tmsi
        self.s_tmsi_present = s_tmsi_present
        self.suci = suci
        self.supi = supi
        self.cipher_alg = cipher_alg
        self.cipher_present = cipher_present
        self.integrity_alg = integrity_alg
        self.integrity_present = integrity_present
        self.cause_ids = cause_ids
        self.cause_vocab = cause_vocab
        self._exposed: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.timestamps)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[MobiFlowRecord]) -> "MobiFlowBatch":
        builder = MobiFlowBatchBuilder()
        for record in records:
            builder.append(record)
        return builder.build()

    @classmethod
    def concat(cls, batches: Sequence["MobiFlowBatch"]) -> "MobiFlowBatch":
        """Concatenate batches into one, re-interning the vocabularies.

        ``concat(bs).to_records() == sum((b.to_records() for b in bs), [])``
        exactly; per-batch vocab ids are remapped through a LUT gather, so
        the cost is O(total records) with no per-record Python work.
        """
        batches = list(batches)
        if not batches:
            return MobiFlowBatchBuilder().build()
        if len(batches) == 1:
            return batches[0]

        def remap(interner: _Interner, vocab: tuple, ids: np.ndarray) -> np.ndarray:
            lut = np.fromiter(
                (interner.intern(name) for name in vocab),
                dtype=ids.dtype,
                count=len(vocab),
            )
            return lut[ids] if len(vocab) else ids

        msg, protocol, direction, cause = (
            _Interner(), _Interner(), _Interner(), _Interner(),
        )
        msg_ids, protocol_ids, direction_ids, cause_ids = [], [], [], []
        for batch in batches:
            msg_ids.append(remap(msg, batch.msg_vocab, batch.msg_ids))
            protocol_ids.append(remap(protocol, batch.protocol_vocab, batch.protocol_ids))
            direction_ids.append(remap(direction, batch.direction_vocab, batch.direction_ids))
            # Cause ids use -1 for "no cause": remap the valid ids, keep holes.
            remapped = remap(cause, batch.cause_vocab, np.maximum(batch.cause_ids, 0))
            cause_ids.append(np.where(batch.cause_ids >= 0, remapped, -1))
        return cls(
            timestamps=np.concatenate([b.timestamps for b in batches]),
            msg_ids=np.concatenate(msg_ids),
            msg_vocab=tuple(msg.names),
            protocol_ids=np.concatenate(protocol_ids),
            protocol_vocab=tuple(protocol.names),
            direction_ids=np.concatenate(direction_ids),
            direction_vocab=tuple(direction.names),
            session_ids=np.concatenate([b.session_ids for b in batches]),
            rnti=np.concatenate([b.rnti for b in batches]),
            rnti_present=np.concatenate([b.rnti_present for b in batches]),
            s_tmsi=np.concatenate([b.s_tmsi for b in batches]),
            s_tmsi_present=np.concatenate([b.s_tmsi_present for b in batches]),
            suci=tuple(s for b in batches for s in b.suci),
            supi=tuple(s for b in batches for s in b.supi),
            cipher_alg=np.concatenate([b.cipher_alg for b in batches]),
            cipher_present=np.concatenate([b.cipher_present for b in batches]),
            integrity_alg=np.concatenate([b.integrity_alg for b in batches]),
            integrity_present=np.concatenate([b.integrity_present for b in batches]),
            cause_ids=np.concatenate(cause_ids),
            cause_vocab=tuple(cause.names),
        )

    # -- conversion -----------------------------------------------------------

    def to_records(self) -> list[MobiFlowRecord]:
        """Reconstruct the exact per-record objects (field-for-field equal)."""
        msg_vocab = self.msg_vocab
        protocol_vocab = self.protocol_vocab
        direction_vocab = self.direction_vocab
        cause_vocab = self.cause_vocab
        out = []
        for i in range(len(self)):
            cause_id = int(self.cause_ids[i])
            out.append(
                MobiFlowRecord(
                    timestamp=float(self.timestamps[i]),
                    msg=msg_vocab[self.msg_ids[i]],
                    protocol=protocol_vocab[self.protocol_ids[i]],
                    direction=direction_vocab[self.direction_ids[i]],
                    session_id=int(self.session_ids[i]),
                    rnti=int(self.rnti[i]) if self.rnti_present[i] else None,
                    s_tmsi=int(self.s_tmsi[i]) if self.s_tmsi_present[i] else None,
                    suci=self.suci[i],
                    supi=self.supi[i],
                    cipher_alg=int(self.cipher_alg[i]) if self.cipher_present[i] else None,
                    integrity_alg=(
                        int(self.integrity_alg[i]) if self.integrity_present[i] else None
                    ),
                    establishment_cause=cause_vocab[cause_id] if cause_id >= 0 else None,
                )
            )
        return out

    def identity_exposed(self) -> np.ndarray:
        """Per-record ``exposes_permanent_identity()``, computed once."""
        if self._exposed is None:
            self._exposed = np.fromiter(
                (
                    bool(supi) or bool(suci and suci.startswith("suci-null-"))
                    for supi, suci in zip(self.supi, self.suci)
                ),
                dtype=bool,
                count=len(self),
            )
        return self._exposed

    # -- wire columns ---------------------------------------------------------

    def to_columns(self) -> tuple[dict[str, Any], dict[str, Any]]:
        """``(columns, meta)`` for :func:`repro.wire.encode_columnar`.

        Numeric columns travel as packed little-endian buffers (one TLV
        bytes value per column, not one TLV value per record); only the
        rare free-form identifier strings stay per-element lists.
        """

        def packed(values: np.ndarray, dtype: str) -> bytes:
            return np.ascontiguousarray(values, dtype=dtype).tobytes()

        columns = {
            "timestamp": packed(self.timestamps, "<f8"),
            "msg": packed(self.msg_ids, "<i4"),
            "protocol": packed(self.protocol_ids, "<i4"),
            "direction": packed(self.direction_ids, "<i4"),
            "session_id": packed(self.session_ids, "<i8"),
            "rnti": packed(self.rnti, "<i8"),
            "rnti_present": packed(self.rnti_present, "<u1"),
            "s_tmsi": packed(self.s_tmsi, "<i8"),
            "s_tmsi_present": packed(self.s_tmsi_present, "<u1"),
            "suci": list(self.suci),
            "supi": list(self.supi),
            "cipher_alg": packed(self.cipher_alg, "<i8"),
            "cipher_present": packed(self.cipher_present, "<u1"),
            "integrity_alg": packed(self.integrity_alg, "<i8"),
            "integrity_present": packed(self.integrity_present, "<u1"),
            "establishment_cause": packed(self.cause_ids, "<i8"),
        }
        meta = {
            "msg_vocab": list(self.msg_vocab),
            "protocol_vocab": list(self.protocol_vocab),
            "direction_vocab": list(self.direction_vocab),
            "cause_vocab": list(self.cause_vocab),
        }
        return columns, meta

    @classmethod
    def from_columns(
        cls, columns: dict[str, Any], meta: dict[str, Any], n: int
    ) -> "MobiFlowBatch":
        for key in _WIRE_META_KEYS:
            if not isinstance(meta.get(key), list):
                raise ValueError(f"columnar MobiFlow batch missing vocab {key!r}")

        def unpack(name: str, dtype: str) -> np.ndarray:
            data = columns.get(name)
            if not isinstance(data, (bytes, bytearray)):
                raise ValueError(f"columnar MobiFlow column {name!r} is not packed bytes")
            values = np.frombuffer(data, dtype=dtype)
            if len(values) != n:
                raise ValueError(
                    f"columnar MobiFlow column {name!r} holds {len(values)} of {n} values"
                )
            return values

        def strings(name: str) -> tuple:
            data = columns.get(name)
            if not isinstance(data, list) or len(data) != n:
                raise ValueError(f"columnar MobiFlow column {name!r} is not a list of {n}")
            return tuple(data)

        return cls(
            timestamps=unpack("timestamp", "<f8"),
            msg_ids=unpack("msg", "<i4"),
            msg_vocab=tuple(meta["msg_vocab"]),
            protocol_ids=unpack("protocol", "<i4"),
            protocol_vocab=tuple(meta["protocol_vocab"]),
            direction_ids=unpack("direction", "<i4"),
            direction_vocab=tuple(meta["direction_vocab"]),
            session_ids=unpack("session_id", "<i8"),
            rnti=unpack("rnti", "<i8"),
            rnti_present=unpack("rnti_present", np.bool_),
            s_tmsi=unpack("s_tmsi", "<i8"),
            s_tmsi_present=unpack("s_tmsi_present", np.bool_),
            suci=strings("suci"),
            supi=strings("supi"),
            cipher_alg=unpack("cipher_alg", "<i8"),
            cipher_present=unpack("cipher_present", np.bool_),
            integrity_alg=unpack("integrity_alg", "<i8"),
            integrity_present=unpack("integrity_present", np.bool_),
            cause_ids=unpack("establishment_cause", "<i8"),
            cause_vocab=tuple(meta["cause_vocab"]),
        )


class MobiFlowBatchBuilder:
    """Accumulates entries column-wise; ``build()`` freezes a batch.

    ``append()`` takes a record object (the collector's output);
    ``append_fields()`` takes the raw field values so synthetic generators
    can skip building record objects entirely.
    """

    __slots__ = (
        "_timestamps",
        "_msg_ids",
        "_msg",
        "_protocol_ids",
        "_protocol",
        "_direction_ids",
        "_direction",
        "_session_ids",
        "_rnti",
        "_s_tmsi",
        "_suci",
        "_supi",
        "_cipher",
        "_integrity",
        "_cause_ids",
        "_cause",
    )

    def __init__(self) -> None:
        self._timestamps: list[float] = []
        self._msg_ids: list[int] = []
        self._msg = _Interner()
        self._protocol_ids: list[int] = []
        self._protocol = _Interner()
        self._direction_ids: list[int] = []
        self._direction = _Interner()
        self._session_ids: list[int] = []
        self._rnti: list[Optional[int]] = []
        self._s_tmsi: list[Optional[int]] = []
        self._suci: list[Optional[str]] = []
        self._supi: list[Optional[str]] = []
        self._cipher: list[Optional[int]] = []
        self._integrity: list[Optional[int]] = []
        self._cause_ids: list[int] = []
        self._cause = _Interner()

    def __len__(self) -> int:
        return len(self._timestamps)

    def append(self, record: MobiFlowRecord) -> None:
        self.append_fields(
            record.timestamp,
            record.msg,
            record.protocol,
            record.direction,
            session_id=record.session_id,
            rnti=record.rnti,
            s_tmsi=record.s_tmsi,
            suci=record.suci,
            supi=record.supi,
            cipher_alg=record.cipher_alg,
            integrity_alg=record.integrity_alg,
            establishment_cause=record.establishment_cause,
        )

    def append_fields(
        self,
        timestamp: float,
        msg: str,
        protocol: str,
        direction: str,
        session_id: int = 0,
        rnti: Optional[int] = None,
        s_tmsi: Optional[int] = None,
        suci: Optional[str] = None,
        supi: Optional[str] = None,
        cipher_alg: Optional[int] = None,
        integrity_alg: Optional[int] = None,
        establishment_cause: Optional[str] = None,
    ) -> None:
        self._timestamps.append(timestamp)
        self._msg_ids.append(self._msg.intern(msg))
        self._protocol_ids.append(self._protocol.intern(protocol))
        self._direction_ids.append(self._direction.intern(direction))
        self._session_ids.append(session_id)
        self._rnti.append(rnti)
        self._s_tmsi.append(s_tmsi)
        self._suci.append(suci)
        self._supi.append(supi)
        self._cipher.append(cipher_alg)
        self._integrity.append(integrity_alg)
        self._cause_ids.append(
            self._cause.intern(establishment_cause) if establishment_cause is not None else -1
        )

    def build(self) -> MobiFlowBatch:
        n = len(self._timestamps)

        def nullable(values: list[Optional[int]]) -> tuple[np.ndarray, np.ndarray]:
            present = np.fromiter((v is not None for v in values), dtype=bool, count=n)
            filled = np.fromiter(
                (v if v is not None else 0 for v in values), dtype=np.int64, count=n
            )
            return filled, present

        rnti, rnti_present = nullable(self._rnti)
        s_tmsi, s_tmsi_present = nullable(self._s_tmsi)
        cipher, cipher_present = nullable(self._cipher)
        integrity, integrity_present = nullable(self._integrity)
        return MobiFlowBatch(
            timestamps=np.asarray(self._timestamps, dtype=np.float64),
            msg_ids=np.asarray(self._msg_ids, dtype=np.intp),
            msg_vocab=tuple(self._msg.names),
            protocol_ids=np.asarray(self._protocol_ids, dtype=np.intp),
            protocol_vocab=tuple(self._protocol.names),
            direction_ids=np.asarray(self._direction_ids, dtype=np.intp),
            direction_vocab=tuple(self._direction.names),
            session_ids=np.asarray(self._session_ids, dtype=np.int64),
            rnti=rnti,
            rnti_present=rnti_present,
            s_tmsi=s_tmsi,
            s_tmsi_present=s_tmsi_present,
            suci=tuple(self._suci),
            supi=tuple(self._supi),
            cipher_alg=cipher,
            cipher_present=cipher_present,
            integrity_alg=integrity,
            integrity_present=integrity_present,
            cause_ids=np.asarray(self._cause_ids, dtype=np.int64),
            cause_vocab=tuple(self._cause.names),
        )

    def flush(self) -> MobiFlowBatch:
        """Freeze the accumulated entries and reset the builder."""
        batch = self.build()
        self.__init__()
        return batch
