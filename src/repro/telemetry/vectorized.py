"""One-pass vectorized featurization (repro.genfast).

The seed :class:`~repro.telemetry.features.StreamingEncoder` walks the
series record by record, allocating one ``[dim]`` row per entry and
maintaining python-set/list causal state.  :func:`encode_batch` computes
the identical ``[M, dim]`` float32 matrix from a columnar
:class:`~repro.telemetry.batch.MobiFlowBatch` in a handful of numpy
passes:

- message / direction / cause one-hots: per-batch-vocab lookup tables
  gathered by the interned id columns, scattered into a preallocated
  matrix;
- inter-arrival buckets: ``np.diff`` + ``searchsorted`` over the bucket
  bounds (the same float64 comparisons the seed loop performs);
- TMSI usage episodes: a stable sort by TMSI (preserving time order
  within each group) and a segmented cumulative sum over
  gap-larger-than-horizon flags — episode counts per presentation without
  a python dict;
- setup-rate / session-churn windows: ``searchsorted`` over the ordered
  event timestamps and positions, reproducing the seed's prune-then-count
  exactly (events with ``t <= horizon`` pruned, the current record's own
  event included);
- new-session / churn first occurrences: ``np.unique(return_index=True)``
  masks.

**Equality contract**: for any time-ordered stream this module's output is
bit-identical (float64 arithmetic, float32 storage) to the seed encoder's.
``tests/test_genfast.py`` verifies it on all five attack-scenario captures
plus the benign mix; the golden-vector fixture freezes the column layout
itself.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.telemetry.batch import MobiFlowBatch
from repro.telemetry.features import (
    _ALG_SLOTS,
    _RATE_SLOTS,
    _RATE_WINDOW_S,
    _TMSI_EPISODE_HORIZON_S,
    FeatureSpec,
    WindowedDataset,
    session_windows,
)


def _first_index(vocab: Sequence[str]) -> dict[str, int]:
    """name -> first index, matching ``tuple.index`` on duplicate entries."""
    index: dict[str, int] = {}
    for i, name in enumerate(vocab):
        index.setdefault(name, i)
    return index


def encode_batch(spec: FeatureSpec, batch: MobiFlowBatch) -> np.ndarray:
    """Encode a columnar batch to the seed-identical ``[M, dim]`` matrix."""
    m = len(batch)
    out = np.zeros((m, spec.dim), dtype=np.float32)
    if m == 0:
        return out
    ts = batch.timestamps
    if np.any(ts[1:] < ts[:-1]):
        raise ValueError("vectorized featurization requires a time-ordered batch")
    rows = np.arange(m)
    col = 0

    if spec.include_messages:
        nv = len(spec.message_vocab)
        spec_index = _first_index(spec.message_vocab)
        lut = np.array(
            [spec_index.get(name, nv) for name in batch.msg_vocab], dtype=np.intp
        )
        out[rows, col + lut[batch.msg_ids]] = 1.0
        col += nv + 1
        dir_lut = np.array(
            [0 if name == "UL" else 1 for name in batch.direction_vocab], dtype=np.intp
        )
        out[rows, col + dir_lut[batch.direction_ids]] = 1.0
        col += 2

    if spec.include_state:
        nc = len(spec.cause_vocab)
        cause_index = _first_index(spec.cause_vocab)
        cause_lut = np.array(
            [cause_index.get(name, nc) for name in batch.cause_vocab] or [nc],
            dtype=np.intp,
        )
        cause_idx = np.where(
            batch.cause_ids >= 0, cause_lut[np.maximum(batch.cause_ids, 0)], nc
        )
        out[rows, col + cause_idx] = 1.0
        col += nc + 1
        for values, present in (
            (batch.cipher_alg, batch.cipher_present),
            (batch.integrity_alg, batch.integrity_present),
        ):
            filled = np.where(present, values, 4)
            weight = np.where(filled == 4, 1.0, spec.state_weight)  # float64
            out[rows, col + np.minimum(filled, 4)] = weight.astype(np.float32)
            col += _ALG_SLOTS

    if spec.include_identifiers:
        _, first_idx = np.unique(batch.session_ids, return_index=True)
        new_session = np.zeros(m, dtype=bool)
        new_session[first_idx] = True

        tmsi_reused = np.zeros(m, dtype=bool)
        pres = np.flatnonzero(batch.s_tmsi_present)
        if pres.size:
            # Sort presentations by TMSI value; the stable sort keeps each
            # TMSI's uses in time order, so consecutive entries within a
            # group are consecutive uses of that identity.
            order = pres[np.argsort(batch.s_tmsi[pres], kind="stable")]
            values = batch.s_tmsi[order]
            times = ts[order]
            k = order.size
            new_group = np.empty(k, dtype=bool)
            new_group[0] = True
            new_group[1:] = values[1:] != values[:-1]
            gap = np.zeros(k, dtype=np.int64)
            gap[1:] = (~new_group[1:]) & (
                (times[1:] - times[:-1]) > _TMSI_EPISODE_HORIZON_S
            )
            # Episode count at each use = 1 + gaps since the group started.
            episodes = np.cumsum(gap)
            starts = np.maximum.accumulate(np.where(new_group, np.arange(k), 0))
            count = 1 + episodes - episodes[starts]
            tmsi_reused[order] = count >= 3

        repeated = np.zeros(m, dtype=bool)
        repeated[1:] = batch.msg_ids[1:] == batch.msg_ids[:-1]

        out[:, col] = new_session
        weight = float(spec.identifier_weight)
        out[:, col + 1] = (weight * tmsi_reused.astype(np.float64)).astype(np.float32)
        out[:, col + 2] = (
            weight * batch.identity_exposed().astype(np.float64)
        ).astype(np.float32)
        out[:, col + 3] = repeated
        col += 4

    if spec.include_timing:
        nb = len(spec.iat_buckets)
        iat = np.empty(m, dtype=np.float64)
        iat[0] = 0.0
        np.subtract(ts[1:], ts[:-1], out=iat[1:])
        bounds = np.asarray(spec.iat_buckets, dtype=np.float64)
        if nb == 0:
            bucket = np.zeros(m, dtype=np.intp)
        elif np.all(bounds[1:] >= bounds[:-1]):
            # First bucket whose bound exceeds the iat == count of bounds <= it.
            bucket = np.searchsorted(bounds, iat, side="right")
        else:
            # Unsorted bounds: reproduce the seed's first-match scan.
            cmp = iat[:, None] < bounds[None, :]
            bucket = np.where(cmp.any(axis=1), cmp.argmax(axis=1), nb)
        out[rows, col + bucket] = 1.0
        col += nb + 1

    if spec.include_rates:
        horizon = ts - _RATE_WINDOW_S
        # Setup-request rate: events = every RRCSetupRequest record. The
        # seed prunes t <= horizon then appends the current record's event
        # before counting; positions <= i minus timestamps <= horizon is
        # the same count (the stream is time-ordered, so nothing at a later
        # position can fall inside an earlier record's trailing window).
        try:
            setup_id = batch.msg_vocab.index("RRCSetupRequest")
        except ValueError:
            setup_positions = np.empty(0, dtype=np.intp)
        else:
            setup_positions = np.flatnonzero(batch.msg_ids == setup_id)
        in_window = np.searchsorted(
            ts[setup_positions], horizon, side="right"
        )
        through = np.searchsorted(setup_positions, rows, side="right")
        out[rows, col + np.minimum(through - in_window, _RATE_SLOTS - 1)] = 1.0
        col += _RATE_SLOTS
        # Session churn: events = first occurrence of each nonzero session.
        uniq, first_idx = np.unique(batch.session_ids, return_index=True)
        churn_positions = np.sort(first_idx[uniq != 0])
        in_window = np.searchsorted(ts[churn_positions], horizon, side="right")
        through = np.searchsorted(churn_positions, rows, side="right")
        out[rows, col + np.minimum(through - in_window, _RATE_SLOTS - 1)] = 1.0
        col += _RATE_SLOTS

    return out


def encode_series(spec: FeatureSpec, series) -> np.ndarray:
    """Vectorized twin of :meth:`FeatureSpec.encode_series` (bit-identical)."""
    return encode_batch(spec, MobiFlowBatch.from_records(series))


def windowed_from_batch(
    batch: MobiFlowBatch, spec: FeatureSpec, window: int
) -> WindowedDataset:
    """Session-mode :class:`WindowedDataset` straight from a columnar batch —
    identical rows to ``WindowedDataset.from_series`` on the same records."""
    per_record = encode_batch(spec, batch)
    windows, window_records = session_windows(
        batch.session_ids.tolist(), per_record, window, spec.dim
    )
    return WindowedDataset(
        spec=spec,
        window=window,
        windows=windows,
        per_record=per_record,
        window_records=window_records,
        mode="session",
    )
