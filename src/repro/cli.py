"""Command-line interface: ``python -m repro <command>``.

Gives operators the paper's workflow without writing code:

- ``collect``  — run the simulated testbed and save telemetry (.mfl) and
  the raw capture (.pcap);
- ``train``    — train a MobiWatch detector on a benign telemetry file and
  save it (.npz);
- ``detect``   — score a telemetry file with a saved detector and print
  the flagged sessions;
- ``explain``  — run LLM expert referencing over a session of a telemetry
  file and print the analysis;
- ``report``   — regenerate one of the paper's tables/figures;
- ``obs``      — run the live testbed and dump the observability artifacts:
  the per-stage closed-loop latency breakdown (capture -> indication -> SDL
  -> detection -> verdict -> action) and the metrics registry;
- ``scale-bench`` — sweep SDL shard / inference-worker counts and report
  the max sustained telemetry rate inside the near-RT budget
  (see docs/SCALING.md);
- ``hotpath-bench`` — measure the inference hot path (incremental LSTM
  scoring, compiled kernels, wire codec), verify the equality contracts,
  and gate against the committed ``BENCH_hotpath.json`` baseline
  (see docs/PERFORMANCE.md);
- ``trainfast-bench`` — measure the training fast path (compiled training
  kernels, parallel sweeps, dataset cache), verify the equality contracts,
  and gate against the committed ``BENCH_trainfast.json`` baseline
  (see docs/PERFORMANCE.md);
- ``genfast-bench`` — measure telemetry generation & ingest (columnar
  MobiFlow batches, one-pass vectorized featurization, batched sim
  ticking), verify the equality contracts, and gate against the committed
  ``BENCH_genfast.json`` baseline (see docs/PERFORMANCE.md);
- ``llmfast-bench`` — measure the verdict-plane fast path (content-
  addressed verdict cache, vectorized RAG retrieval, compiled prompt
  assembly), verify the decision/ranking/byte equality contracts, and
  gate against the committed ``BENCH_llmfast.json`` baseline
  (see docs/PERFORMANCE.md);
- ``slo``      — run the live testbed with the full observability plane on
  (SLO engine, profiler, exporter, provenance) and render per-objective
  attainment/burn (``report``), the alert transition log (``alerts``),
  the per-stage self-time profile (``profile``), or one verdict's full
  evidence chain (``explain``) — see docs/OBSERVABILITY.md;
- ``obs-bench`` — measure what full observability costs the inference hot
  path and gate it at the <= 3% ceiling against the committed
  ``BENCH_obs.json`` baseline (see docs/OBSERVABILITY.md);
- ``runtime`` — the process-parallel deployment mode: ``run`` the live
  testbed with scoring on supervised worker processes, ``soak`` a backend
  to the SLO edge with a mid-run ``kill -9`` fault trial, or ``bench``
  the multi-vs-single-process speedup against ``BENCH_runtime.json``
  (see docs/RUNTIME.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _cmd_collect(args: argparse.Namespace) -> int:
    from repro.experiments.datasets import (
        AttackDatasetConfig,
        BenignDatasetConfig,
        generate_attack_dataset,
        generate_benign_dataset,
    )
    from repro.telemetry.persist import save_pcap, save_series

    if args.kind == "benign":
        capture = generate_benign_dataset(
            BenignDatasetConfig(seed=args.seed, duration_s=args.duration)
        )
    else:
        capture = generate_attack_dataset(
            AttackDatasetConfig(seed=args.seed, duration_s=args.duration)
        )
    written = save_series(capture.series, args.out)
    print(
        f"collected {len(capture.series)} MobiFlow records "
        f"({capture.stats.sessions_completed} completed sessions) -> "
        f"{args.out} ({written} bytes)"
    )
    if args.pcap:
        pcap_bytes = save_pcap(capture.net.pcap, args.pcap)
        print(f"raw capture -> {args.pcap} ({pcap_bytes} bytes)")
    if args.kind == "attack":
        for attack in capture.attacks:
            hits = sum(1 for r in capture.series if attack.is_malicious(r))
            print(f"  armed {attack.name}: {hits} malicious records")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core.config import XsecConfig
    from repro.core.framework import build_detector
    from repro.ml.serialize import save_detector
    from repro.telemetry.features import WindowedDataset
    from repro.telemetry.persist import load_series

    config = XsecConfig(detector=args.detector)
    series = load_series(args.data)
    windowed = WindowedDataset.from_series(series, config.spec, config.window)
    detector = build_detector(config)
    report = detector.fit(windowed.windows, epochs=args.epochs, lr=config.train_lr)
    save_detector(detector, args.model)
    print(
        f"trained {args.detector} on {windowed.num_windows} windows "
        f"({args.epochs} epochs, final loss {report.final_loss:.5f})"
    )
    print(f"threshold (p{detector.threshold.percentile:g}) = {detector.threshold.threshold:.5f}")
    print(f"model -> {args.model}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.core.config import XsecConfig
    from repro.ml.serialize import load_detector
    from repro.telemetry.features import WindowedDataset
    from repro.telemetry.persist import load_series

    detector = load_detector(args.model)
    config = XsecConfig()
    series = load_series(args.data)
    windowed = WindowedDataset.from_series(series, config.spec, detector.window)
    scores = detector.scores(windowed.windows)
    threshold = detector.threshold.threshold or 0.0
    flagged_sessions: dict[int, float] = {}
    for i in range(windowed.num_windows):
        if scores[i] > threshold:
            session = series[windowed.record_indices(i)[0]].session_id
            flagged_sessions[session] = max(
                flagged_sessions.get(session, 0.0), float(scores[i])
            )
    alarms = int((scores > threshold).sum())
    print(
        f"{windowed.num_windows} windows scored; {alarms} above "
        f"threshold {threshold:.5f}; {len(flagged_sessions)} sessions flagged"
    )
    for session, peak in sorted(flagged_sessions.items()):
        records = [r for r in series if r.session_id == session]
        messages = ", ".join(r.msg for r in records[:6])
        print(f"  session {session}: peak score {peak:.4f} [{messages} ...]")
    return 0 if not args.fail_on_alarm or alarms == 0 else 2


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.llm.analyst import ExpertAnalyst
    from repro.llm.client import LlmClient, SimulatedLlmServer
    from repro.telemetry.persist import load_series

    series = load_series(args.data)
    records = [r for r in series if r.session_id == args.session]
    if not records:
        print(f"no records for session {args.session}", file=sys.stderr)
        return 1
    analyst = ExpertAnalyst(
        client=LlmClient(server=SimulatedLlmServer(), model=args.model),
        use_rag=args.rag,
    )
    verdict = analyst.analyze(records, detector_flagged=True)
    print(f"model: {args.model} (rag={'on' if args.rag else 'off'})")
    print(verdict.response.raw_text)
    if verdict.needs_human_review:
        print("\n!! contradicts the detector verdict: escalate to human review")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.artifact == "table2":
        from repro.experiments.table2 import run_table2

        print(run_table2().render())
    elif args.artifact == "table3":
        from repro.experiments.table3 import run_table3

        print(run_table3().render())
    elif args.artifact == "figure4":
        from repro.experiments.figure4 import run_figure4

        print(run_figure4().render())
    elif args.artifact == "figure5":
        from repro.experiments.figure5 import run_figure5

        print(run_figure5().render())
    elif args.artifact == "rag":
        from repro.experiments.rag_study import run_rag_study

        print(run_rag_study().render())
    elif args.artifact == "scale":
        from repro.experiments.scale import run_scale_experiment

        print(run_scale_experiment().render())
    else:  # poisoning
        from repro.experiments.poisoning import run_poisoning_experiment

        print(run_poisoning_experiment().render())
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.testbed import LiveTestbedConfig, run_live_testbed

    run = run_live_testbed(LiveTestbedConfig(live_duration_s=args.duration))
    print(run.render_stage_breakdown())
    latency = run.latency
    print(
        f"\nnear-RT budget check: detection (capture->alarm) "
        f"max={latency['detection_s'].get('max', 0.0):.4f}s (budget 1.0s)"
    )
    print(f"summary: {run.summary}\n")
    registry = run.xsec.obs.metrics
    print(registry.render())
    if args.logs:
        print(f"\nlast {args.logs} structured log records:")
        print(run.xsec.obs.logger.render(limit=args.logs))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "stage_breakdown": run.stage_breakdown,
                    "latency": run.latency,
                    "summary": run.summary,
                    "metrics": run.metrics_snapshot,
                },
                fh,
                indent=2,
                sort_keys=True,
            )
        print(f"\nobs snapshot -> {args.json}")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as fh:
            fh.write(registry.to_jsonl() + "\n")
        print(f"metrics JSONL -> {args.jsonl}")
    detection_max = latency["detection_s"].get("max")
    return 0 if detection_max is not None and detection_max < 1.0 else 3


def _cmd_scale_bench(args: argparse.Namespace) -> int:
    import json

    from repro.scale.bench import ScaleBenchConfig, run_scale_bench, smoke_config

    config = smoke_config() if args.smoke else ScaleBenchConfig()
    if args.shards:
        config.shards = tuple(args.shards)
    if args.duration is not None:
        config.duration_s = args.duration
    result = run_scale_bench(config)
    print(result.render())
    print(
        f"\nspeedup {config.shards[0]} -> {config.shards[-1]} shards: "
        f"{result.speedup():.2f}x (bench wall {result.workload_wall_s:.1f}s)"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"scale-bench snapshot -> {args.json}")
    violations = result.check()
    for violation in violations:
        print(f"FAIL: {violation}", file=sys.stderr)
    return 0 if not violations else 3


def _cmd_hotpath_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.hotpath.bench import (
        load_baseline,
        run_bench,
        save_result,
        violations,
    )

    # The committed baseline lives at the repo root next to src/.
    default_baseline = Path(__file__).resolve().parents[2] / "BENCH_hotpath.json"
    baseline_path = Path(args.baseline) if args.baseline else default_baseline
    result = run_bench(quick=args.quick)
    print(result.report())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"hotpath-bench snapshot -> {args.json}")
    if args.update_baseline:
        save_result(result, baseline_path)
        print(f"baseline updated -> {baseline_path}")
        return 0
    baseline = load_baseline(baseline_path)
    if baseline is None:
        print(f"(no committed baseline at {baseline_path}; gating on floors only)")
    failures = violations(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 0 if not failures else 3


def _cmd_genfast_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.genfast.bench import (
        load_baseline,
        run_bench,
        save_result,
        violations,
    )

    # The committed baseline lives at the repo root next to src/.
    default_baseline = Path(__file__).resolve().parents[2] / "BENCH_genfast.json"
    baseline_path = Path(args.baseline) if args.baseline else default_baseline
    result = run_bench(quick=args.quick)
    print(result.report())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"genfast-bench snapshot -> {args.json}")
    if args.update_baseline:
        save_result(result, baseline_path)
        print(f"baseline updated -> {baseline_path}")
        return 0
    baseline = load_baseline(baseline_path)
    if baseline is None:
        print(f"(no committed baseline at {baseline_path}; gating on floors only)")
    failures = violations(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 0 if not failures else 3


def _cmd_llmfast_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.llmfast.bench import (
        load_baseline,
        run_bench,
        save_result,
        violations,
    )

    # The committed baseline lives at the repo root next to src/.
    default_baseline = Path(__file__).resolve().parents[2] / "BENCH_llmfast.json"
    baseline_path = Path(args.baseline) if args.baseline else default_baseline
    result = run_bench(quick=args.quick)
    print(result.report())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"llmfast-bench snapshot -> {args.json}")
    if args.update_baseline:
        save_result(result, baseline_path)
        print(f"baseline updated -> {baseline_path}")
        return 0
    baseline = load_baseline(baseline_path)
    if baseline is None:
        print(f"(no committed baseline at {baseline_path}; gating on floors only)")
    failures = violations(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 0 if not failures else 3


def _cmd_megabatch_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.megabatch.bench import (
        load_baseline,
        run_bench,
        save_result,
        violations,
    )

    # The committed baseline lives at the repo root next to src/.
    default_baseline = Path(__file__).resolve().parents[2] / "BENCH_megabatch.json"
    baseline_path = Path(args.baseline) if args.baseline else default_baseline
    result = run_bench(quick=args.quick)
    print(result.report())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"megabatch-bench snapshot -> {args.json}")
    if args.update_baseline:
        save_result(result, baseline_path)
        print(f"baseline updated -> {baseline_path}")
        return 0
    baseline = load_baseline(baseline_path)
    if baseline is None:
        print(f"(no committed baseline at {baseline_path}; gating on floors only)")
    failures = violations(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 0 if not failures else 3


def _cmd_trainfast_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.trainfast.bench import (
        load_baseline,
        run_bench,
        save_result,
        violations,
    )

    # The committed baseline lives at the repo root next to src/.
    default_baseline = Path(__file__).resolve().parents[2] / "BENCH_trainfast.json"
    baseline_path = Path(args.baseline) if args.baseline else default_baseline
    result = run_bench(quick=args.quick)
    print(result.report())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"trainfast-bench snapshot -> {args.json}")
    if args.update_baseline:
        save_result(result, baseline_path)
        print(f"baseline updated -> {baseline_path}")
        return 0
    baseline = load_baseline(baseline_path)
    if baseline is None:
        print(f"(no committed baseline at {baseline_path}; gating on floors only)")
    failures = violations(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 0 if not failures else 3


def _cmd_slo(args: argparse.Namespace) -> int:
    import json

    from repro.core.config import XsecConfig
    from repro.experiments.testbed import LiveTestbedConfig, run_live_testbed
    from repro.slo.exporter import render_openmetrics
    from repro.slo.settings import SloSettings

    settings = SloSettings.full(export_path=args.jsonl)
    run = run_live_testbed(
        LiveTestbedConfig(
            xsec=XsecConfig(auto_release=True, auto_blocklist=True, slo=settings),
            live_duration_s=args.duration,
        )
    )
    xsec = run.xsec
    slo = xsec.slo
    store = xsec.mobiwatch.provenance
    incidents = xsec.pipeline.incidents
    status = 0
    try:
        if args.action == "report":
            print(slo.engine.render())
            # Evaluated at sim end: the testbed drains ~20s past the last
            # traffic, so idle components legitimately read stale/down.
            print("\ncomponent health (at sim end, after the drain tail):")
            statuses = slo.scoreboard.statuses()
            if statuses:
                for name, state in sorted(statuses.items()):
                    print(f"  {name:<28} {state}")
            else:
                print("  (no components registered)")
            print(
                f"\n{len(store)} provenance records minted, "
                f"{len(incidents)} incidents closed, "
                f"{len(slo.engine.events)} alert transitions "
                f"(see `slo alerts`)"
            )
        elif args.action == "alerts":
            print(slo.engine.render_alerts())
        elif args.action == "profile":
            print(slo.profiler.render())
        else:  # explain
            provenance_id = args.verdict
            if provenance_id is None:
                # Default to the newest incident whose provenance chain is
                # complete (a cooldown-suppressed anomaly never receives a
                # verdict, so its chain legitimately ends "(pending)").
                candidates = [
                    i.anomaly.provenance_id
                    for i in incidents
                    if i.anomaly.provenance_id is not None
                ]
                complete = [
                    pid
                    for pid in candidates
                    if store.get(pid) is not None
                    and store.get(pid).verdict_completed_at is not None
                ]
                if complete:
                    provenance_id = complete[-1]
                elif candidates:
                    provenance_id = candidates[-1]
            record = store.get(provenance_id)
            if record is None:
                known = ", ".join(str(p) for p in sorted(store._records)) or "none"
                print(
                    f"no provenance record {provenance_id!r} (known ids: {known})",
                    file=sys.stderr,
                )
                status = 1
            else:
                print(record.render())
        if args.openmetrics:
            with open(args.openmetrics, "w", encoding="utf-8") as fh:
                fh.write(render_openmetrics(xsec.obs.metrics))
            print(f"openmetrics dump -> {args.openmetrics}")
        if args.jsonl:
            print(f"metric snapshots (JSONL) -> {args.jsonl}")
        if args.stacks:
            with open(args.stacks, "w", encoding="utf-8") as fh:
                stacks = slo.collapsed_stacks()
                fh.write(stacks + ("\n" if stacks and not stacks.endswith("\n") else ""))
            print(f"collapsed flamegraph stacks -> {args.stacks}")
        if args.json:
            payload = {
                "objectives": slo.engine.report(),
                "alerts": [
                    {
                        "time_s": e.time_s,
                        "objective": e.objective,
                        "to_state": e.to_state,
                        "fast_burn": e.fast_burn,
                        "slow_burn": e.slow_burn,
                    }
                    for e in slo.engine.events
                ],
                "health": slo.scoreboard.statuses(),
                "profile": slo.profiler.stage_table(),
                "provenance_records": len(store),
                "incidents": len(incidents),
                "summary": run.summary,
            }
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            print(f"slo snapshot -> {args.json}")
    finally:
        slo.shutdown()
    return status


def _cmd_obs_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.slo.bench import (
        load_baseline,
        run_bench,
        save_result,
        violations,
    )

    # The committed baseline lives at the repo root next to src/.
    default_baseline = Path(__file__).resolve().parents[2] / "BENCH_obs.json"
    baseline_path = Path(args.baseline) if args.baseline else default_baseline
    result = run_bench(quick=args.quick)
    print(result.report())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"obs-bench snapshot -> {args.json}")
    if args.update_baseline:
        save_result(result, baseline_path)
        print(f"baseline updated -> {baseline_path}")
        return 0
    baseline = load_baseline(baseline_path)
    if baseline is None:
        print(f"(no committed baseline at {baseline_path}; gating on the ceiling only)")
    failures = violations(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 0 if not failures else 3


def _cmd_runtime(args: argparse.Namespace) -> int:
    if args.action == "run":
        return _runtime_run(args)
    if args.action == "soak":
        return _runtime_soak(args)
    return _runtime_bench(args)


def _runtime_run(args: argparse.Namespace) -> int:
    """Live testbed with scoring in supervised worker processes."""
    import json

    from repro.core.config import XsecConfig
    from repro.experiments.testbed import LiveTestbedConfig, run_live_testbed
    from repro.runtime.settings import RuntimeSettings

    config = XsecConfig(
        auto_release=True,
        auto_blocklist=True,
        runtime=RuntimeSettings(score_in_processes=True, workers=args.workers),
    )
    run = run_live_testbed(
        LiveTestbedConfig(xsec=config, live_duration_s=args.duration or 60.0)
    )
    try:
        print(run.render_stage_breakdown())
        print(f"\nsummary: {run.summary}")
        scale = run.xsec.pipeline.scale_report()
        health = scale.get("runtime", {})
        pool_stats = scale.get("pool", {})
        print(
            f"scoring path: {run.xsec.mobiwatch._scoring_path} "
            f"({pool_stats.get('windows_scored', 0)} windows in "
            f"{pool_stats.get('batches', 0)} batches)"
        )
        for name, worker in sorted(health.items()):
            print(f"  {name}: {worker['state']}, {worker['restarts']} restart(s)")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(
                    {
                        "summary": run.summary,
                        "latency": run.latency,
                        "runtime": health,
                    },
                    fh,
                    indent=2,
                    sort_keys=True,
                )
            print(f"runtime snapshot -> {args.json}")
    finally:
        run.xsec.close()
    detection_max = run.latency["detection_s"].get("max")
    return 0 if detection_max is not None and detection_max < 1.0 else 3


def _runtime_soak(args: argparse.Namespace) -> int:
    """Offered-load ramp + mid-run kill -9 fault trial on a real backend."""
    import json

    from repro.runtime.soak import SoakConfig, run_soak, smoke_config

    config = smoke_config() if args.quick else SoakConfig()
    config.backend = args.backend
    config.workers = args.workers
    if args.duration is not None:
        config.duration_s = args.duration
    if args.no_fault:
        config.fault = False
    result = run_soak(config)
    print(result.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"runtime-soak snapshot -> {args.json}")
    failures = result.check()
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 0 if not failures else 3


def _runtime_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.runtime.bench import (
        load_baseline,
        run_runtime_bench,
        save_result,
        violations,
    )

    # The committed baseline lives at the repo root next to src/.
    default_baseline = Path(__file__).resolve().parents[2] / "BENCH_runtime.json"
    baseline_path = Path(args.baseline) if args.baseline else default_baseline
    result = run_runtime_bench(quick=args.quick)
    print(result.report())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"runtime-bench snapshot -> {args.json}")
    if args.update_baseline:
        save_result(result, baseline_path)
        print(f"baseline updated -> {baseline_path}")
        return 0
    baseline = load_baseline(baseline_path)
    if baseline is None:
        print(f"(no committed baseline at {baseline_path}; gating on floors only)")
    failures = violations(result, baseline)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 0 if not failures else 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="6G-XSec reproduction command line"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    collect = commands.add_parser("collect", help="run the testbed, save telemetry")
    collect.add_argument("--kind", choices=("benign", "attack"), default="benign")
    collect.add_argument("--out", required=True, help="output .mfl telemetry file")
    collect.add_argument("--pcap", help="also save the raw capture here")
    collect.add_argument("--seed", type=int, default=1)
    collect.add_argument("--duration", type=float, default=240.0)
    collect.set_defaults(func=_cmd_collect)

    train = commands.add_parser("train", help="train a detector on benign telemetry")
    train.add_argument("--data", required=True, help="benign .mfl telemetry file")
    train.add_argument("--model", required=True, help="output .npz model file")
    train.add_argument("--detector", choices=("autoencoder", "lstm"), default="autoencoder")
    train.add_argument("--epochs", type=int, default=50)
    train.set_defaults(func=_cmd_train)

    detect = commands.add_parser("detect", help="score telemetry with a saved model")
    detect.add_argument("--data", required=True)
    detect.add_argument("--model", required=True)
    detect.add_argument(
        "--fail-on-alarm", action="store_true", help="exit 2 when anomalies are found"
    )
    detect.set_defaults(func=_cmd_detect)

    explain = commands.add_parser("explain", help="LLM analysis of one session")
    explain.add_argument("--data", required=True)
    explain.add_argument("--session", type=int, required=True)
    explain.add_argument("--model", default="chatgpt-4o")
    explain.add_argument("--rag", action="store_true")
    explain.set_defaults(func=_cmd_explain)

    report = commands.add_parser("report", help="regenerate a paper artifact")
    report.add_argument(
        "artifact",
        choices=("table2", "table3", "figure4", "figure5", "rag", "poisoning", "scale"),
    )
    report.set_defaults(func=_cmd_report)

    obs = commands.add_parser(
        "obs", help="run the live testbed, dump metrics + loop-stage latency"
    )
    obs.add_argument(
        "--duration", type=float, default=60.0, help="live traffic duration (sim s)"
    )
    obs.add_argument("--json", help="write the full obs snapshot here (.json)")
    obs.add_argument("--jsonl", help="write the metrics registry here (.jsonl)")
    obs.add_argument(
        "--logs", type=int, default=0, help="also print the last N structured logs"
    )
    obs.set_defaults(func=_cmd_obs)

    scale_bench = commands.add_parser(
        "scale-bench",
        help="sweep SDL shard / inference worker counts, report the max "
        "sustained telemetry rate inside the 1s near-RT budget",
    )
    scale_bench.add_argument(
        "--shards", type=int, nargs="+", help="shard counts to sweep (default 1 2 4 8)"
    )
    scale_bench.add_argument(
        "--duration", type=float, help="simulated seconds of traffic per trial"
    )
    scale_bench.add_argument(
        "--smoke", action="store_true", help="small CI sweep (1/2/4 shards, 1s trials)"
    )
    scale_bench.add_argument("--json", help="write the machine-readable result here")
    scale_bench.set_defaults(func=_cmd_scale_bench)

    hotpath_bench = commands.add_parser(
        "hotpath-bench",
        help="measure per-record scoring latency, compiled kernel throughput "
        "and codec MB/s; verify equality contracts; gate vs BENCH_hotpath.json",
    )
    hotpath_bench.add_argument(
        "--quick", action="store_true", help="small CI run (fewer records/reps)"
    )
    hotpath_bench.add_argument("--json", help="write the machine-readable result here")
    hotpath_bench.add_argument(
        "--baseline", help="baseline file (default: BENCH_hotpath.json at repo root)"
    )
    hotpath_bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run instead of gating against it",
    )
    hotpath_bench.set_defaults(func=_cmd_hotpath_bench)

    genfast_bench = commands.add_parser(
        "genfast-bench",
        help="measure capture -> featurized-window ingest throughput "
        "(columnar batches, vectorized featurization, batched sim ticks); "
        "verify equality contracts; gate vs BENCH_genfast.json",
    )
    genfast_bench.add_argument(
        "--quick", action="store_true", help="small CI run (fewer records/reps)"
    )
    genfast_bench.add_argument("--json", help="write the machine-readable result here")
    genfast_bench.add_argument(
        "--baseline", help="baseline file (default: BENCH_genfast.json at repo root)"
    )
    genfast_bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run instead of gating against it",
    )
    genfast_bench.set_defaults(func=_cmd_genfast_bench)

    llmfast_bench = commands.add_parser(
        "llmfast-bench",
        help="measure the verdict-plane fast path (verdict cache, "
        "vectorized RAG retrieval, compiled prompt assembly) on a "
        "duplicate-heavy storm workload; verify the decision/ranking/byte "
        "equality contracts; gate vs BENCH_llmfast.json",
    )
    llmfast_bench.add_argument(
        "--quick", action="store_true", help="small CI run (fewer analyses/reps)"
    )
    llmfast_bench.add_argument("--json", help="write the machine-readable result here")
    llmfast_bench.add_argument(
        "--baseline", help="baseline file (default: BENCH_llmfast.json at repo root)"
    )
    llmfast_bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run instead of gating against it",
    )
    llmfast_bench.set_defaults(func=_cmd_llmfast_bench)

    megabatch_bench = commands.add_parser(
        "megabatch-bench",
        help="measure one-GEMM-per-tick scoring vs the pooled per-session "
        "path at >= 1k sessions, plus the int8 quantized LSTM tier; verify "
        "equality contracts; gate vs BENCH_megabatch.json",
    )
    megabatch_bench.add_argument(
        "--quick", action="store_true", help="small CI run (fewer ticks/repeats)"
    )
    megabatch_bench.add_argument("--json", help="write the machine-readable result here")
    megabatch_bench.add_argument(
        "--baseline", help="baseline file (default: BENCH_megabatch.json at repo root)"
    )
    megabatch_bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run instead of gating against it",
    )
    megabatch_bench.set_defaults(func=_cmd_megabatch_bench)

    trainfast_bench = commands.add_parser(
        "trainfast-bench",
        help="measure compiled trainer throughput, sweep wall-clock and cache "
        "hit rate; verify equality contracts; gate vs BENCH_trainfast.json",
    )
    trainfast_bench.add_argument(
        "--quick", action="store_true", help="small CI run (fewer repeats/configs)"
    )
    trainfast_bench.add_argument("--json", help="write the machine-readable result here")
    trainfast_bench.add_argument(
        "--baseline", help="baseline file (default: BENCH_trainfast.json at repo root)"
    )
    trainfast_bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run instead of gating against it",
    )
    trainfast_bench.set_defaults(func=_cmd_trainfast_bench)

    slo = commands.add_parser(
        "slo",
        help="run the live testbed fully observed; report SLO attainment, "
        "alerts, profiles, or one verdict's evidence chain",
    )
    slo.add_argument(
        "action",
        choices=("report", "alerts", "profile", "explain"),
        help="what to render after the run",
    )
    slo.add_argument(
        "verdict",
        type=int,
        nargs="?",
        help="provenance id for `explain` (default: the latest incident)",
    )
    slo.add_argument(
        "--duration", type=float, default=60.0, help="live traffic duration (sim s)"
    )
    slo.add_argument("--openmetrics", help="write the OpenMetrics exposition here")
    slo.add_argument(
        "--jsonl", help="write the continuous metric snapshots here (.jsonl)"
    )
    slo.add_argument(
        "--stacks", help="write collapsed flamegraph stacks here (.txt)"
    )
    slo.add_argument("--json", help="write the machine-readable snapshot here")
    slo.set_defaults(func=_cmd_slo)

    runtime = commands.add_parser(
        "runtime",
        help="process-parallel deployment mode: run the live testbed on "
        "supervised worker processes, soak it to the SLO edge with a "
        "mid-run kill -9, or gate the multi-vs-single-process speedup "
        "vs BENCH_runtime.json (see docs/RUNTIME.md)",
    )
    runtime.add_argument(
        "action",
        choices=("run", "soak", "bench"),
        help="run the live testbed on worker processes / soak a backend "
        "with fault injection / gate the speedup floor",
    )
    runtime.add_argument(
        "--backend",
        choices=("process", "inproc", "sim"),
        default="process",
        help="scheduler backend for `soak` (default: process)",
    )
    runtime.add_argument(
        "--workers", type=int, default=2, help="scoring worker processes"
    )
    runtime.add_argument(
        "--duration",
        type=float,
        help="per-trial seconds for `soak`, live sim seconds for `run`",
    )
    runtime.add_argument(
        "--quick", action="store_true", help="small CI-sized workload"
    )
    runtime.add_argument(
        "--no-fault", action="store_true", help="skip the kill -9 fault trial"
    )
    runtime.add_argument("--json", help="write the machine-readable result here")
    runtime.add_argument(
        "--baseline", help="baseline file (default: BENCH_runtime.json at repo root)"
    )
    runtime.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run instead of gating against it",
    )
    runtime.set_defaults(func=_cmd_runtime)

    obs_bench = commands.add_parser(
        "obs-bench",
        help="measure full-observability overhead on the inference hot path; "
        "gate at the <= 3%% ceiling vs BENCH_obs.json",
    )
    obs_bench.add_argument(
        "--quick", action="store_true", help="small CI run (fewer records/passes)"
    )
    obs_bench.add_argument("--json", help="write the machine-readable result here")
    obs_bench.add_argument(
        "--baseline", help="baseline file (default: BENCH_obs.json at repo root)"
    )
    obs_bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run instead of gating against it",
    )
    obs_bench.set_defaults(func=_cmd_obs_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
