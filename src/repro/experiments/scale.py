"""Experiment P2 — pipeline scalability with traffic load (§1 challenge).

The paper names scalability as a core challenge for cellular edge
analytics. This experiment drives the full live pipeline at increasing
traffic multipliers and measures whether the near-real-time budget holds:
telemetry throughput, detection latency, alarm rate on purely benign
traffic, and the wall-clock cost per simulated second.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import XsecConfig
from repro.core.framework import SixGXSec
from repro.experiments.colosseum import ColosseumScenario, run_scenario
from repro.experiments.datasets import BenignDatasetConfig, generate_benign_dataset
from repro.experiments.reporting import render_table
from repro.ml.serialize import load_detector, save_detector
from repro.ran.network import NetworkConfig

BASE_MIX = (("pixel5", 1), ("pixel6", 1), ("galaxy_a53", 1), ("oai_ue", 2))


@dataclass
class ScaleConfig:
    multipliers: tuple = (1, 2, 4)
    live_duration_s: float = 60.0
    train_epochs: int = 30
    seed: int = 51
    benign: BenignDatasetConfig = field(default_factory=BenignDatasetConfig)


@dataclass
class ScalePoint:
    multiplier: int
    ues: int
    records: int
    windows_scored: int
    alarms: int
    detection_mean_s: Optional[float]
    detection_max_s: Optional[float]
    # Tail latency from the repro.obs histograms: detection (newest flagged
    # record -> alarm) and ingest (capture -> xApp ingest). Means hide the
    # tail; the near-RT budget is about the worst incident, not the average.
    detection_p95_s: Optional[float] = None
    detection_p99_s: Optional[float] = None
    ingest_p50_s: Optional[float] = None
    ingest_p95_s: Optional[float] = None
    ingest_p99_s: Optional[float] = None
    wall_clock_s: float = 0.0
    # Compact repro.obs summary of the point's run (events, messages, I/O).
    metrics: dict = field(default_factory=dict)

    @property
    def alarm_rate(self) -> float:
        return self.alarms / self.windows_scored if self.windows_scored else 0.0

    def row(self) -> list:
        def ms(value: Optional[float]) -> str:
            return "-" if value is None else f"{1000 * value:.0f}ms"

        return [
            f"x{self.multiplier}",
            str(self.ues),
            str(self.records),
            str(self.windows_scored),
            f"{100 * self.alarm_rate:.1f}%",
            ms(self.detection_mean_s),
            ms(self.detection_p95_s),
            ms(self.detection_p99_s),
            ms(self.detection_max_s),
            ms(self.ingest_p50_s),
            ms(self.ingest_p99_s),
            f"{self.wall_clock_s:.1f}s",
        ]


@dataclass
class ScaleResult:
    points: list

    def render(self) -> str:
        return render_table(
            [
                "Load",
                "UEs",
                "Records",
                "Windows",
                "AlarmRate",
                "DetMean",
                "DetP95",
                "DetP99",
                "DetMax",
                "IngP50",
                "IngP99",
                "Wall",
            ],
            [point.row() for point in self.points],
            title="P2 — pipeline scalability over traffic load (benign only)",
        )


def run_scale_experiment(config: Optional[ScaleConfig] = None) -> ScaleResult:
    config = config or ScaleConfig()
    # Train once; every load point serves the same model.
    xsec_config = XsecConfig(train_epochs=config.train_epochs)
    benign = generate_benign_dataset(config.benign)
    labeled = benign.labeled(xsec_config.spec, xsec_config.window, "benign")
    template = SixGXSec(xsec_config, network_config=NetworkConfig(seed=config.seed))
    detector = template.train_from_benign(labeled.windowed.windows)

    points = []
    for multiplier in config.multipliers:
        xsec = SixGXSec(
            xsec_config, network_config=NetworkConfig(seed=config.seed + multiplier)
        )
        xsec.deploy_detector(detector)
        mix = tuple((profile, count * multiplier) for profile, count in BASE_MIX)
        scenario = ColosseumScenario(
            duration_s=config.live_duration_s,
            ue_mix=mix,
            mean_think_time_s=6.0,
        )
        run_scenario(xsec.net, scenario, run=False)
        # perf_counter: monotonic, immune to wall-clock adjustments.
        started = time.perf_counter()
        xsec.run(until=config.live_duration_s + 20.0)
        wall = time.perf_counter() - started
        latency = xsec.pipeline.latency_report()["detection_s"]
        sim = xsec.net.sim
        detection_hist = xsec.obs.metrics.histogram("mobiwatch.detection_latency_s")
        ingest_hist = xsec.obs.metrics.histogram("mobiwatch.capture_to_ingest_s")
        points.append(
            ScalePoint(
                multiplier=multiplier,
                ues=len(xsec.net.ues),
                records=xsec.mobiwatch.records_seen,
                windows_scored=xsec.mobiwatch.windows_scored,
                alarms=len(xsec.mobiwatch.anomalies),
                detection_mean_s=latency.get("mean"),
                detection_max_s=latency.get("max"),
                detection_p95_s=detection_hist.percentile(95),
                detection_p99_s=detection_hist.percentile(99),
                ingest_p50_s=ingest_hist.percentile(50),
                ingest_p95_s=ingest_hist.percentile(95),
                ingest_p99_s=ingest_hist.percentile(99),
                wall_clock_s=wall,
                metrics={
                    "sim_events": sim.events_processed,
                    "sim_events_per_wall_s": sim.events_processed / wall if wall else 0.0,
                    "rmr_messages": xsec.ric.rmr.messages_routed,
                    "sdl_writes": xsec.ric.sdl.writes,
                    "indications": xsec.agent.indications_sent,
                    "capture_to_ingest_s": xsec.obs.metrics.histogram(
                        "mobiwatch.capture_to_ingest_s"
                    ).stats(),
                },
            )
        )
    return ScaleResult(points=points)
