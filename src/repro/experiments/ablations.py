"""Ablations A1-A3 over the design choices DESIGN.md calls out.

- **A1 window size** — §3.2 leaves N free; sweep it.
- **A2 threshold percentile** — §4.1 picks the 99th percentile assuming 1%
  training noise; sweep the operating point.
- **A3 feature sets** — Table 1 groups telemetry into message / identifier
  / state categories; evaluate the detector with each group removed, plus
  the unweighted encoding and global (non-sessionized) windowing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.experiments.datasets import (
    AttackDatasetConfig,
    BenignDatasetConfig,
    generate_attack_dataset,
    generate_benign_dataset,
)
from repro.experiments.reporting import render_table
from repro.ml.detector import AutoencoderDetector
from repro.ml.metrics import DetectionMetrics
from repro.telemetry.features import FeatureSpec


@dataclass
class AblationConfig:
    epochs: int = 40
    lr: float = 2e-3
    seed: int = 7
    window: int = 6
    percentile: float = 99.0
    benign: BenignDatasetConfig = field(default_factory=BenignDatasetConfig)
    attack: AttackDatasetConfig = field(default_factory=AttackDatasetConfig)


@dataclass
class AblationRow:
    label: str
    benign_fp_rate: float
    attack_recall: float
    attack_precision: Optional[float]
    attack_f1: Optional[float]

    def cells(self) -> list:
        def pct(value):
            return "N/A" if value is None else f"{100 * value:.1f}%"

        return [
            self.label,
            pct(self.benign_fp_rate),
            pct(self.attack_recall),
            pct(self.attack_precision),
            pct(self.attack_f1),
        ]


@dataclass
class AblationResult:
    title: str
    rows: list

    def render(self) -> str:
        return render_table(
            ["Variant", "BenignFP", "Recall", "Precision", "F1"],
            [row.cells() for row in self.rows],
            title=self.title,
        )


def _evaluate(
    spec: FeatureSpec,
    window: int,
    percentile: float,
    config: AblationConfig,
    label: str,
    mode: str = "session",
    captures=None,
    cache=None,
    trainfast=None,
) -> AblationRow:
    benign_capture, attack_capture = captures
    benign = benign_capture.labeled(spec, window, "benign", mode=mode, cache=cache)
    attack = attack_capture.labeled(spec, window, "attack", mode=mode, cache=cache)
    windows = benign.windowed.windows
    split = int(len(windows) * 0.7)
    detector = AutoencoderDetector(
        window=window, feature_dim=spec.dim, percentile=percentile, seed=config.seed
    )
    if trainfast is not None:
        detector.attach_trainfast(trainfast)
    detector.fit(windows[:split], epochs=config.epochs, lr=config.lr)
    held = windows[split:]
    benign_fp = float(detector.detect(held).mean()) if len(held) else 0.0
    predictions = detector.detect(attack.windowed.windows)
    metrics = DetectionMetrics.from_labels(attack.window_labels, predictions)
    return AblationRow(
        label=label,
        benign_fp_rate=benign_fp,
        attack_recall=metrics.recall or 0.0,
        attack_precision=metrics.precision,
        attack_f1=metrics.f1,
    )


def _captures(config: AblationConfig):
    return (
        generate_benign_dataset(config.benign),
        generate_attack_dataset(config.attack),
    )


def _sweep_tools(trainfast):
    """(SweepRunner, DatasetCache or None) for optional TrainfastSettings.

    ``trainfast=None`` gives the seed behaviour: a serial runner, no cache,
    seed training loops. Lazily imported so the experiments layer has no
    hard dependency on repro.trainfast.
    """
    from repro.trainfast.sweep import sweep_tools

    return sweep_tools(trainfast)


def _prewarm(cache, captures, specs) -> None:
    """Encode per-record matrices in the parent before the sweep forks.

    Forked workers inherit the warm cache copy-on-write, so no worker
    re-runs the Python-level feature encoder on a capture the parent has
    already encoded.
    """
    if cache is None:
        return
    for spec in specs:
        for capture in captures:
            cache.record_matrix(capture.series, spec)


def run_window_ablation(
    config: Optional[AblationConfig] = None,
    windows: tuple = (4, 6, 8, 10),
    trainfast=None,
) -> AblationResult:
    """A1: sliding-window size sweep."""
    config = config or AblationConfig()
    captures = _captures(config)
    spec = FeatureSpec()
    runner, cache = _sweep_tools(trainfast)
    _prewarm(cache, captures, [spec])
    rows = runner.map(
        lambda w: _evaluate(
            spec,
            w,
            config.percentile,
            config,
            label=f"N={w}",
            captures=captures,
            cache=cache,
            trainfast=trainfast,
        ),
        windows,
    )
    return AblationResult(title="Ablation A1 — window size", rows=rows)


def run_threshold_ablation(
    config: Optional[AblationConfig] = None,
    percentiles: tuple = (90.0, 95.0, 97.5, 99.0, 99.9),
    trainfast=None,
) -> AblationResult:
    """A2: threshold percentile sweep (one training, many thresholds)."""
    config = config or AblationConfig()
    captures = _captures(config)
    spec = FeatureSpec()
    _, cache = _sweep_tools(trainfast)
    benign = captures[0].labeled(spec, config.window, "benign", cache=cache)
    attack = captures[1].labeled(spec, config.window, "attack", cache=cache)
    windows = benign.windowed.windows
    split = int(len(windows) * 0.7)
    detector = AutoencoderDetector(
        window=config.window, feature_dim=spec.dim, seed=config.seed
    )
    if trainfast is not None:
        detector.attach_trainfast(trainfast)
    detector.fit(windows[:split], epochs=config.epochs, lr=config.lr)
    held_scores = detector.scores(windows[split:])
    attack_scores = detector.scores(attack.windowed.windows)
    rows = []
    for percentile in percentiles:
        detector.threshold.percentile = percentile
        detector.threshold.fit(detector.training_scores)
        threshold = detector.threshold.threshold or 0.0
        fp = float((held_scores > threshold).mean()) if len(held_scores) else 0.0
        predictions = attack_scores > threshold
        metrics = DetectionMetrics.from_labels(attack.window_labels, predictions)
        rows.append(
            AblationRow(
                label=f"p{percentile:g}",
                benign_fp_rate=fp,
                attack_recall=metrics.recall or 0.0,
                attack_precision=metrics.precision,
                attack_f1=metrics.f1,
            )
        )
    return AblationResult(title="Ablation A2 — threshold percentile", rows=rows)


def run_feature_ablation(
    config: Optional[AblationConfig] = None,
    trainfast=None,
) -> AblationResult:
    """A3: feature-group and encoding-choice sweep."""
    config = config or AblationConfig()
    captures = _captures(config)
    runner, cache = _sweep_tools(trainfast)
    variants: list[tuple[str, FeatureSpec, str]] = [
        ("full", FeatureSpec(), "session"),
        ("no-identifiers", FeatureSpec(include_identifiers=False), "session"),
        ("no-state", FeatureSpec(include_state=False), "session"),
        ("no-timing", FeatureSpec(include_timing=False), "session"),
        ("no-rates", FeatureSpec(include_rates=False), "session"),
        (
            "unweighted",
            FeatureSpec(identifier_weight=1.0, state_weight=1.0),
            "session",
        ),
        ("global-windows", FeatureSpec(), "global"),
    ]
    _prewarm(cache, captures, {spec for _, spec, _ in variants})
    rows = runner.map(
        lambda variant: _evaluate(
            variant[1],
            config.window,
            config.percentile,
            config,
            label=variant[0],
            mode=variant[2],
            captures=captures,
            cache=cache,
            trainfast=trainfast,
        ),
        variants,
    )
    return AblationResult(title="Ablation A3 — feature sets and encoding", rows=rows)
