"""Experiment E2 — Figure 4: autoencoder reconstruction-error patterns.

The paper visualizes the AE's reconstruction errors over the attack
dataset's sequences: points above the detection threshold are outliers,
and instances of the same attack type show *similar group anomaly
patterns* (① Blind DoS, ② BTS DoS). This module regenerates the series,
groups the error bursts by attack instance, measures the intra- vs
inter-type pattern similarity, and feeds the supervised
reconstruction-error classifier the paper proposes as follow-on work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.experiments.datasets import (
    AttackDatasetConfig,
    BenignDatasetConfig,
    generate_attack_dataset,
    generate_benign_dataset,
)
from repro.experiments.reporting import render_score_series
from repro.ml.detector import AutoencoderDetector
from repro.ml.error_classifier import ErrorPatternClassifier, error_signature
from repro.telemetry.features import FeatureSpec


@dataclass
class Figure4Config:
    window: int = 6
    spec: FeatureSpec = field(default_factory=FeatureSpec)
    epochs: int = 50
    lr: float = 2e-3
    seed: int = 7
    percentile: float = 99.0
    benign: BenignDatasetConfig = field(default_factory=BenignDatasetConfig)
    attack: AttackDatasetConfig = field(default_factory=AttackDatasetConfig)


@dataclass
class AttackBurst:
    """The error burst of one attack instance (its malicious windows)."""

    attack_name: str
    instance_index: int
    scores: np.ndarray

    def signature(self, length: int = 16) -> np.ndarray:
        return error_signature(self.scores, length)


@dataclass
class Figure4Result:
    scores: np.ndarray  # chronological window scores over the attack capture
    labels: list  # attack name or "" per window
    threshold: float
    bursts: list  # AttackBurst per attack instance
    classifier_accuracy: float

    def render(self, max_windows: int = 160) -> str:
        step = max(1, len(self.scores) // max_windows)
        sampled_scores = list(self.scores[::step])
        sampled_labels = [self.labels[i] for i in range(0, len(self.labels), step)]
        plot = render_score_series(
            sampled_scores,
            self.threshold,
            labels=sampled_labels,
            title=(
                "Figure 4 — AE reconstruction errors over the attack dataset "
                f"(every {step}th window)"
            ),
        )
        lines = [plot, "", "Per-instance burst statistics:"]
        for burst in self.bursts:
            lines.append(
                f"  {burst.attack_name:26s} #{burst.instance_index}: "
                f"{len(burst.scores)} windows, peak={burst.scores.max():.4f}, "
                f"mean={burst.scores.mean():.4f}"
            )
        lines.append(
            f"Pattern similarity: nearest-centroid attack-type classification "
            f"accuracy on burst shapes = {100 * self.classifier_accuracy:.0f}%"
        )
        return "\n".join(lines)

    def intra_type_similarity(self) -> dict:
        """Mean pairwise signature distance within each attack type."""
        by_type: dict[str, list[np.ndarray]] = {}
        for burst in self.bursts:
            by_type.setdefault(burst.attack_name, []).append(burst.signature())
        out = {}
        for name, signatures in by_type.items():
            if len(signatures) < 2:
                continue
            distances = [
                float(np.linalg.norm(a - b))
                for i, a in enumerate(signatures)
                for b in signatures[i + 1 :]
            ]
            out[name] = sum(distances) / len(distances)
        return out

    def inter_type_similarity(self) -> float:
        """Mean pairwise signature distance across different attack types."""
        distances = []
        for i, a in enumerate(self.bursts):
            for b in self.bursts[i + 1 :]:
                if a.attack_name != b.attack_name:
                    distances.append(float(np.linalg.norm(a.signature() - b.signature())))
        return sum(distances) / len(distances) if distances else 0.0


def run_figure4(config: Optional[Figure4Config] = None) -> Figure4Result:
    config = config or Figure4Config()
    benign_capture = generate_benign_dataset(config.benign)
    attack_capture = generate_attack_dataset(config.attack)
    benign = benign_capture.labeled(config.spec, config.window, "benign")
    attack = attack_capture.labeled(config.spec, config.window, "attack")

    detector = AutoencoderDetector(
        window=config.window,
        feature_dim=config.spec.dim,
        percentile=config.percentile,
        seed=config.seed,
    )
    detector.fit(benign.windowed.windows, epochs=config.epochs, lr=config.lr)
    scores = detector.scores(attack.windowed.windows)
    labels = [attack.window_attack(i) or "" for i in range(attack.num_windows)]

    # Group malicious windows into per-instance bursts.
    bursts: list[AttackBurst] = []
    instance_counter: dict[str, int] = {}
    for instance in attack_capture.attacks:
        window_scores = [
            scores[i]
            for i in range(attack.num_windows)
            if attack.window_labels[i]
            and any(
                instance.is_malicious(attack.series[j])
                for j in attack.windowed.record_indices(i)
            )
        ]
        if not window_scores:
            continue
        index = instance_counter.get(instance.name, 0)
        instance_counter[instance.name] = index + 1
        bursts.append(
            AttackBurst(
                attack_name=instance.name,
                instance_index=index,
                scores=np.asarray(window_scores),
            )
        )

    # Leave-one-out nearest-centroid classification over burst shapes (the
    # paper's proposed supervised follow-on).
    correct = 0
    evaluated = 0
    for held_index, held in enumerate(bursts):
        train = [b for i, b in enumerate(bursts) if i != held_index]
        train_types = {b.attack_name for b in train}
        if held.attack_name not in train_types:
            continue
        classifier = ErrorPatternClassifier()
        classifier.fit([b.scores for b in train], [b.attack_name for b in train])
        evaluated += 1
        correct += int(classifier.predict(held.scores) == held.attack_name)
    accuracy = correct / evaluated if evaluated else 0.0

    return Figure4Result(
        scores=scores,
        labels=labels,
        threshold=detector.threshold.threshold or 0.0,
        bursts=bursts,
        classifier_accuracy=accuracy,
    )
