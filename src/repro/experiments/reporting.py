"""Text rendering for tables and figure series (paper artifacts)."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Fixed-width ASCII table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(line)
    for row in rows:
        out.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(out)


def render_score_series(
    scores: Sequence[float],
    threshold: float,
    labels: Optional[Sequence[str]] = None,
    height: int = 12,
    title: str = "",
) -> str:
    """ASCII scatter of anomaly scores with the threshold line (Figure 4).

    Each column is one window; ``*`` marks the score, ``-`` the threshold
    row, and the footer annotates attack-type spans when labels are given.
    """
    if not scores:
        return f"{title}\n(no data)"
    peak = max(max(scores), threshold) * 1.05 or 1.0
    rows = []
    threshold_row = height - 1 - int(threshold / peak * (height - 1))
    for level in range(height):
        cells = []
        for score in scores:
            score_row = height - 1 - int(score / peak * (height - 1))
            if level == score_row:
                cells.append("*")
            elif level == threshold_row:
                cells.append("-")
            else:
                cells.append(" ")
        value = peak * (height - 1 - level) / (height - 1)
        rows.append(f"{value:8.3f} |" + "".join(cells))
    out = []
    if title:
        out.append(title)
    out.extend(rows)
    out.append(" " * 9 + "+" + "-" * len(scores))
    if labels is not None:
        marks = []
        current = None
        for label in labels:
            symbol = "." if not label else label[0].upper()
            marks.append(symbol)
            current = label
        out.append(" " * 10 + "".join(marks))
        legend = sorted({label for label in labels if label})
        if legend:
            out.append(
                "legend: "
                + ", ".join(f"{label[0].upper()}={label}" for label in legend)
                + ", .=benign"
            )
    out.append(f"threshold = {threshold:.4f} (row of '-')")
    return "\n".join(out)


def checkmark(value: bool) -> str:
    return "Y" if value else "x"
