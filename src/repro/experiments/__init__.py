"""Experiment harness: datasets, testbed assembly, and paper artifacts.

One module per evaluation artifact (see DESIGN.md §4):

- :mod:`.colosseum` — scenario-driven traffic generation (Colosseum stand-in)
- :mod:`.datasets` — the paper's benign and attack dataset collection (§4)
- :mod:`.testbed` — full 6G-XSec testbed assembly (network + RIC + xApps)
- :mod:`.table2` — detection performance (Table 2)
- :mod:`.figure4` — reconstruction-error visualization series (Figure 4)
- :mod:`.table3` — LLM evaluation grid (Table 3)
- :mod:`.figure5` — prompt template + example response (Figure 5)
- :mod:`.ablations` — window size / threshold percentile / feature sets
- :mod:`.reporting` — text rendering of tables and series
"""

from repro.experiments.datasets import (
    AttackDatasetConfig,
    BenignDatasetConfig,
    generate_attack_dataset,
    generate_benign_dataset,
)
from repro.experiments.colosseum import ColosseumScenario, run_scenario

__all__ = [
    "AttackDatasetConfig",
    "BenignDatasetConfig",
    "generate_attack_dataset",
    "generate_benign_dataset",
    "ColosseumScenario",
    "run_scenario",
]
