"""Colosseum stand-in: scenario-driven large-scale traffic generation.

The paper uses the Colosseum wireless network emulator to generate diverse
benign traffic (and to run the attack collection safely). Its role in the
evaluation is purely *workload generation* — many concurrent UE sessions
with realistic arrival processes — which this module reproduces on top of
the simulated network: each emulated UE runs repeated registration sessions
separated by exponential think times, for a configured scenario duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ran.network import FiveGNetwork
from repro.ran.ue import UserEquipment


@dataclass
class ColosseumScenario:
    """One traffic scenario: who connects, how often, for how long."""

    duration_s: float = 120.0
    # (profile name, count) pairs; defaults mirror the paper's mix of four
    # commodity handsets plus OAI soft-UEs.
    ue_mix: tuple = (
        ("pixel5", 2),
        ("pixel6", 2),
        ("galaxy_a22", 2),
        ("galaxy_a53", 2),
        ("oai_ue", 4),
    )
    # Mean idle gap between one UE's sessions (exponential).
    mean_think_time_s: float = 6.0
    # Spread of initial session starts across this many seconds.
    arrival_spread_s: float = 5.0
    # Fraction of sessions that are network-initiated (paging -> mt-Access
    # service request) when the UE is registered and idle.
    mt_session_fraction: float = 0.15


@dataclass
class ScenarioStats:
    """What the scenario produced."""

    ues: list = field(default_factory=list)
    sessions_started: int = 0
    sessions_completed: int = 0
    sessions_failed: int = 0
    mt_sessions_paged: int = 0


class _SessionDriver:
    """Keeps one UE cycling through sessions until the scenario ends."""

    def __init__(
        self,
        net: FiveGNetwork,
        ue: UserEquipment,
        scenario: ColosseumScenario,
        stats: ScenarioStats,
    ) -> None:
        self.net = net
        self.ue = ue
        self.scenario = scenario
        self.stats = stats
        self.rng = net.sim.rng.stream(f"colosseum.{ue.name}")

    def start(self, initial_delay: float) -> None:
        self.net.sim.schedule(initial_delay, self._begin_session)

    def _begin_session(self) -> None:
        if self.net.sim.now >= self.scenario.duration_s:
            return
        if self.ue.rrc_state.name != "IDLE" or self.ue._session_active:
            # Still winding down a previous session; retry shortly.
            self.net.sim.schedule(0.5, self._begin_session)
            return
        if (
            self.ue.fivegmm_state.name == "REGISTERED"
            and self.rng.random() < self.scenario.mt_session_fraction
            and self.net.amf.page_supi(str(self.ue.supi))
        ):
            # Network-initiated session: the UE answers the page itself;
            # come back after it has likely wound down.
            self.stats.mt_sessions_paged += 1
            self.stats.sessions_started += 1
            gap = 6.0 + self.rng.expovariate(1.0 / self.scenario.mean_think_time_s)
            self.net.sim.schedule(gap, self._begin_session)
            return
        self.stats.sessions_started += 1
        self.ue.start_session(on_end=self._on_session_end)

    def _on_session_end(self, ue: UserEquipment, outcome: str) -> None:
        if outcome == "completed":
            self.stats.sessions_completed += 1
        else:
            self.stats.sessions_failed += 1
        gap = self.rng.expovariate(1.0 / self.scenario.mean_think_time_s)
        self.net.sim.schedule(gap, self._begin_session)


def run_scenario(
    net: FiveGNetwork,
    scenario: Optional[ColosseumScenario] = None,
    run: bool = True,
) -> ScenarioStats:
    """Provision the scenario's UEs and drive their session loops.

    With ``run=False`` the scenario is scheduled but the simulation is left
    to the caller (used when attacks must be armed on the same timeline).
    """
    scenario = scenario or ColosseumScenario()
    stats = ScenarioStats()
    arrivals = net.sim.rng.stream("colosseum.arrivals")
    for profile_name, count in scenario.ue_mix:
        for _ in range(count):
            ue = net.add_ue(profile_name)
            stats.ues.append(ue)
            driver = _SessionDriver(net, ue, scenario, stats)
            driver.start(arrivals.uniform(0.05, scenario.arrival_spread_s))
    if run:
        net.run(until=scenario.duration_s + 30.0)
    return stats
