"""Full live-testbed assembly (§4 Testbed Setup) and experiment P1.

Builds the complete Figure 3 deployment — simulated OAI-style network, E2
RIC agent, near-RT RIC with MobiWatch + LLM analyzer, SMO training — runs
benign traffic and attacks *live*, and measures the end-to-end control
loop: telemetry capture -> MobiWatch detection -> LLM verdict -> E2
control action. The near-RT control loop must complete within 10 ms - 1 s
(§2.1); the LLM stage deliberately sits outside that budget (it is the
non-real-time expert the nRT pre-filter shields).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.attacks import BlindDosAttack, BtsDosAttack, NullCipherAttack
from repro.core.config import XsecConfig
from repro.core.framework import SixGXSec
from repro.experiments.colosseum import ColosseumScenario, run_scenario
from repro.experiments.datasets import BenignDatasetConfig, generate_benign_dataset
from repro.ran.network import NetworkConfig


@dataclass
class LiveTestbedConfig:
    xsec: XsecConfig = field(default_factory=lambda: XsecConfig(auto_release=True, auto_blocklist=True))
    network_seed: int = 42
    benign: BenignDatasetConfig = field(default_factory=BenignDatasetConfig)
    live_duration_s: float = 60.0
    live_ue_mix: tuple = (("pixel5", 1), ("galaxy_a53", 1), ("oai_ue", 1))


@dataclass
class LiveTestbedRun:
    xsec: SixGXSec
    attacks: list
    summary: dict
    latency: dict
    # repro.obs artifacts: per-stage loop latency + full metrics snapshot.
    stage_breakdown: dict = field(default_factory=dict)
    metrics_snapshot: dict = field(default_factory=dict)

    def render_stage_breakdown(self) -> str:
        return self.xsec.pipeline.render_stage_breakdown()

    def detected_attack_instances(self) -> int:
        """Attack instances whose RNTIs/window overlap a confirmed incident."""
        detected = 0
        for attack in self.attacks:
            hit = any(
                incident.anomaly.rnti in attack.malicious_rntis
                or attack.in_window(incident.anomaly.newest_record_ts)
                for incident in self.xsec.pipeline.incidents
            )
            detected += int(hit)
        return detected


def build_trained_framework(config: Optional[LiveTestbedConfig] = None) -> SixGXSec:
    """Stand up the framework with a detector trained on a benign capture."""
    config = config or LiveTestbedConfig()
    benign = generate_benign_dataset(config.benign)
    labeled = benign.labeled(config.xsec.spec, config.xsec.window, "benign")
    xsec = SixGXSec(config.xsec, network_config=NetworkConfig(seed=config.network_seed))
    xsec.train_from_benign(labeled.windowed.windows)
    return xsec


def run_live_testbed(config: Optional[LiveTestbedConfig] = None) -> LiveTestbedRun:
    """Train, then run live traffic + attacks through the whole pipeline."""
    config = config or LiveTestbedConfig()
    xsec = build_trained_framework(config)
    xsec.start()
    scenario = ColosseumScenario(
        duration_s=config.live_duration_s,
        ue_mix=config.live_ue_mix,
        mean_think_time_s=8.0,
    )
    run_scenario(xsec.net, scenario, run=False)
    victim = xsec.net.add_ue("pixel6", name="victim")
    xsec.net.sim.schedule(2.0, victim.start_session)
    attacks = [
        BtsDosAttack(xsec.net, start_time=5.0, connections=10, interval_s=0.08),
        BlindDosAttack(xsec.net, victim=victim, start_time=18.0, replays=5),
        NullCipherAttack(xsec.net, start_time=35.0),
    ]
    for attack in attacks:
        attack.arm()
    xsec.run(until=config.live_duration_s + 20.0)
    return LiveTestbedRun(
        xsec=xsec,
        attacks=attacks,
        summary=xsec.pipeline.summary(),
        latency=xsec.pipeline.latency_report(),
        stage_breakdown=xsec.pipeline.stage_breakdown(),
        metrics_snapshot=xsec.obs.snapshot(),
    )
