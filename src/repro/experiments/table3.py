"""Experiment E3 — Table 3: can LLMs explain cellular anomalies?

For each of the five models and each of the five attack traces (plus two
benign sequences), render the Figure 5 zero-shot prompt, query the model,
parse the response, and score correctness exactly as the paper does: ✓ if
the model classified the trace correctly (attack traces -> anomalous,
benign traces -> benign) with a correct explanation; ✗ otherwise.
Explanation correctness for attack traces requires the named top attack to
match the ground-truth attack class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.datasets import (
    AttackDatasetConfig,
    CollectedDataset,
    generate_attack_dataset,
)
from repro.experiments.reporting import render_table
from repro.llm.analyst import ExpertAnalyst
from repro.llm.client import LlmClient, SimulatedLlmServer
from repro.llm.profiles import MODEL_PROFILES
from repro.telemetry.mobiflow import MobiFlowRecord

# Attack display order and the paper's expected ✓/✗ grid (Table 3).
ATTACK_ROWS = (
    "bts_dos",
    "blind_dos",
    "uplink_id_extraction",
    "downlink_id_extraction",
    "null_cipher",
)
MODEL_ORDER = ("chatgpt-4o", "gemini", "copilot", "llama3", "claude-3-sonnet")

PAPER_TABLE3 = {
    "bts_dos": (True, True, True, False, False),
    "blind_dos": (True, False, False, True, False),
    "uplink_id_extraction": (False, False, False, False, True),
    "downlink_id_extraction": (True, True, False, True, True),
    "null_cipher": (True, True, False, True, True),
    "benign_1": (True, True, True, True, True),
    "benign_2": (True, True, True, True, True),
}

# Ground-truth attack class -> keyword that must appear in the model's top
# attack name for the explanation to count as correct.
_ATTACK_KEYWORDS = {
    "bts_dos": "signaling storm",
    "blind_dos": "tmsi",
    "uplink_id_extraction": "uplink identity",
    "downlink_id_extraction": "downlink identity",
    "null_cipher": "null cipher",
}


@dataclass
class Table3Config:
    attack: AttackDatasetConfig = field(default_factory=AttackDatasetConfig)
    use_rag: bool = False
    models: tuple = MODEL_ORDER


@dataclass
class TraceCase:
    """One evaluated trace: records + ground truth."""

    name: str
    records: list
    is_attack: bool


@dataclass
class Table3Result:
    cases: list
    grid: dict  # (trace name, model) -> bool correct
    config: Table3Config

    def matches_paper(self) -> bool:
        for trace, expected in PAPER_TABLE3.items():
            for model, value in zip(MODEL_ORDER, expected):
                if model not in self.config.models:
                    continue
                if self.grid.get((trace, model)) != value:
                    return False
        return True

    def render(self) -> str:
        headers = ["Attack / Trace"] + [m for m in self.config.models] + ["Paper row"]
        rows = []
        for case in self.cases:
            row = [case.name]
            for model in self.config.models:
                row.append("Y" if self.grid[(case.name, model)] else "x")
            expected = PAPER_TABLE3.get(case.name)
            row.append(
                "".join("Y" if v else "x" for v in expected) if expected else "?"
            )
            rows.append(row)
        return render_table(
            rows=rows,
            headers=headers,
            title="Table 3 — LLM classification correctness (Y=correct, x=wrong)",
        )


def build_traces(capture: CollectedDataset) -> list[TraceCase]:
    """One trace per attack type + two benign session sequences."""
    records = capture.series.records
    cases: list[TraceCase] = []
    seen_types = set()
    for attack in capture.attacks:
        if attack.name in seen_types:
            continue
        malicious_sessions = {
            record.session_id
            for record in records
            if attack.is_malicious(record)
        }
        if not malicious_sessions:
            continue
        seen_types.add(attack.name)
        trace = [r for r in records if r.session_id in malicious_sessions]
        cases.append(TraceCase(name=attack.name, records=trace, is_attack=True))
    # Two benign sequences "to avoid bias" (§4.2).
    malicious = [
        any(a.is_malicious(r) for a in capture.attacks) for r in records
    ]
    benign_sessions = sorted(
        {
            r.session_id
            for r, bad in zip(records, malicious)
            if r.session_id and not bad
        }
    )
    clean_sessions = [
        s
        for s in benign_sessions
        if not any(
            bad for r, bad in zip(records, malicious) if r.session_id == s
        )
    ]
    for i, session in enumerate(clean_sessions[:2], start=1):
        trace = [r for r in records if r.session_id == session]
        cases.append(TraceCase(name=f"benign_{i}", records=trace, is_attack=False))
    # Keep the paper's row order.
    order = {name: i for i, name in enumerate(ATTACK_ROWS)}
    cases.sort(key=lambda c: (order.get(c.name, 99), c.name))
    return cases


def _is_correct(case: TraceCase, response) -> bool:
    if not case.is_attack:
        return not response.is_anomalous
    if not response.is_anomalous:
        return False
    keyword = _ATTACK_KEYWORDS[case.name]
    top = response.top_attacks[0][0].lower() if response.top_attacks else ""
    return keyword in top


def run_table3(
    config: Optional[Table3Config] = None,
    capture: Optional[CollectedDataset] = None,
) -> Table3Result:
    config = config or Table3Config()
    capture = capture or generate_attack_dataset(config.attack)
    cases = build_traces(capture)
    server = SimulatedLlmServer()
    grid: dict = {}
    for model in config.models:
        analyst = ExpertAnalyst(
            client=LlmClient(server=server, model=model), use_rag=config.use_rag
        )
        for case in cases:
            verdict = analyst.analyze(case.records, detector_flagged=case.is_attack)
            grid[(case.name, model)] = _is_correct(case, verdict.response)
    return Table3Result(cases=cases, grid=grid, config=config)
