"""Experiment E4 — Figure 5: prompt template and example response.

Regenerates the paper's Figure 5: the zero-shot prompt built from a BTS
DoS telemetry sequence and ChatGPT-4o's analysis identifying a signaling
storm from the repeated RRC message pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.datasets import AttackDatasetConfig, generate_attack_dataset
from repro.experiments.table3 import build_traces
from repro.llm.client import LlmClient, SimulatedLlmServer
from repro.llm.prompt import PromptTemplate
from repro.llm.response import AnalysisResponse, parse_response


@dataclass
class Figure5Config:
    attack: AttackDatasetConfig = field(default_factory=AttackDatasetConfig)
    model: str = "chatgpt-4o"
    # Figure 5 shows a BTS DoS (signaling storm) example.
    trace_name: str = "bts_dos"
    max_records: int = 30


@dataclass
class Figure5Result:
    prompt: str
    response_text: str
    response: AnalysisResponse
    model: str

    def render(self) -> str:
        return "\n".join(
            [
                "Figure 5 — prompt template and example response",
                "=" * 60,
                "PROMPT:",
                self.prompt,
                "=" * 60,
                f"RESPONSE ({self.model}):",
                self.response_text,
            ]
        )

    @property
    def identifies_signaling_storm(self) -> bool:
        """The paper's headline: the response names the signaling storm."""
        return "signaling storm" in self.response_text.lower()


def run_figure5(config: Optional[Figure5Config] = None) -> Figure5Result:
    config = config or Figure5Config()
    capture = generate_attack_dataset(config.attack)
    cases = build_traces(capture)
    case = next(c for c in cases if c.name == config.trace_name)
    records = case.records[: config.max_records]
    prompt = PromptTemplate().render(records)
    server = SimulatedLlmServer()
    client = LlmClient(server=server, model=config.model)
    text = client.complete(prompt)
    return Figure5Result(
        prompt=prompt,
        response_text=text,
        response=parse_response(text),
        model=config.model,
    )
