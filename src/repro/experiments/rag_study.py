"""Experiment S1 — specialized LLMs for 6G: RAG and fine-tuning (paper §5).

The paper's discussion proposes two remedies for the zero-shot misses of
Table 3: retrieval-augmented prompts carrying accurate 3GPP protocol
knowledge, and locally fine-tuned cellular-domain models. This study runs
the Table 3 grid three ways:

1. **zero-shot** (the paper's §4.2 setting),
2. **RAG**: the prompt template appends the knowledge base's most relevant
   procedure snippets — models with the reasoning but not the domain fact
   now connect them (capability profiles' ``rag_boost``),
3. **fine-tuned**: the local ``xsec-ft-7b`` model trained on cellular
   protocol data, which perceives every signature and answers without a
   WAN round trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.datasets import AttackDatasetConfig, generate_attack_dataset
from repro.experiments.reporting import render_table
from repro.experiments.table3 import MODEL_ORDER, Table3Config, build_traces, _is_correct
from repro.llm.analyst import ExpertAnalyst
from repro.llm.client import LlmClient, SimulatedLlmServer
from repro.llm.knowledge import CellularKnowledgeBase
from repro.llmfast.retrieval import VectorizedRetriever
from repro.llmfast.settings import LlmfastSettings


@dataclass
class RagStudyConfig:
    attack: AttackDatasetConfig = field(default_factory=AttackDatasetConfig)
    models: tuple = MODEL_ORDER
    finetuned_model: str = "xsec-ft-7b"


@dataclass
class RagStudyResult:
    cases: list
    # (mode, trace, model) -> correct
    grid: dict
    config: RagStudyConfig

    def correct_count(self, mode: str, model: str) -> int:
        return sum(
            1 for case in self.cases if self.grid[(mode, case.name, model)]
        )

    def render(self) -> str:
        total = len(self.cases)
        headers = ["Model", f"Zero-shot (of {total})", f"+RAG (of {total})"]
        rows = []
        for model in self.config.models:
            rows.append(
                [
                    model,
                    str(self.correct_count("zero-shot", model)),
                    str(self.correct_count("rag", model)),
                ]
            )
        rows.append(
            [
                self.config.finetuned_model + " (fine-tuned, local)",
                str(self.correct_count("finetuned", self.config.finetuned_model)),
                "-",
            ]
        )
        return render_table(
            headers,
            rows,
            title="S1 — specialized LLMs: zero-shot vs. RAG vs. fine-tuned (§5)",
        )


def run_rag_study(
    config: Optional[RagStudyConfig] = None,
    capture=None,
) -> RagStudyResult:
    config = config or RagStudyConfig()
    capture = capture or generate_attack_dataset(config.attack)
    cases = build_traces(capture)
    server = SimulatedLlmServer()
    # repro.llmfast: the study's RAG grid runs on the vectorized
    # retriever.  The seed-ranking contract is re-asserted on this run's
    # own traces before any model sees a prompt.
    knowledge = CellularKnowledgeBase()
    retriever = VectorizedRetriever(knowledge)
    for case in cases:
        vectorized = retriever.retrieve(case.records)
        seed_ranking = knowledge.retrieve(case.records)
        if vectorized != seed_ranking:
            raise AssertionError(
                f"vectorized retrieval diverged from the seed ranking on "
                f"trace {case.name!r}: {vectorized} != {seed_ranking}"
            )
    study_settings = LlmfastSettings(vectorized_rag=True, compiled_prompts=True)
    grid: dict = {}
    for model in config.models:
        for mode, use_rag in (("zero-shot", False), ("rag", True)):
            analyst = ExpertAnalyst(
                client=LlmClient(server=server, model=model),
                use_rag=use_rag,
                llmfast=study_settings,
            )
            for case in cases:
                verdict = analyst.analyze(case.records, detector_flagged=case.is_attack)
                grid[(mode, case.name, model)] = _is_correct(case, verdict.response)
    finetuned = ExpertAnalyst(
        client=LlmClient(server=server, model=config.finetuned_model), use_rag=False
    )
    for case in cases:
        verdict = finetuned.analyze(case.records, detector_flagged=case.is_attack)
        grid[("finetuned", case.name, config.finetuned_model)] = _is_correct(
            case, verdict.response
        )
    return RagStudyResult(cases=cases, grid=grid, config=config)
