"""Dataset collection matching the paper's §4 methodology.

- **Benign dataset**: traffic from the four commodity handsets plus
  Colosseum OAI soft-UEs; >100 UE sessions; mild channel noise (RRC
  retransmissions are the paper's main false-positive source).
- **Attack dataset**: a benign background with all five attacks staggered
  through the capture, several instances per attack type (Figure 4 shows
  repeated instances per type). Ground-truth labels come from the attack
  objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.attacks import (
    BlindDosAttack,
    BtsDosAttack,
    DownlinkIdExtractionAttack,
    NullCipherAttack,
    UplinkIdExtractionAttack,
)
from repro.experiments.colosseum import ColosseumScenario, ScenarioStats, run_scenario
from repro.ran.channel import ChannelConfig
from repro.ran.network import FiveGNetwork, NetworkConfig
from repro.telemetry.collector import MobiFlowCollector
from repro.telemetry.dataset import LabeledDataset
from repro.telemetry.features import FeatureSpec
from repro.telemetry.mobiflow import TelemetrySeries

# Mild noise, as on the paper's real-radio testbed (§4.1 attributes the
# false positives to RRC retransmissions and network interference).
DEFAULT_CHANNEL = ChannelConfig(duplicate_prob=0.008, setup_loss_prob=0.004)


@dataclass
class BenignDatasetConfig:
    """Benign collection knobs (defaults sized like the paper's dataset)."""

    seed: int = 1
    duration_s: float = 240.0
    ue_mix: tuple = (
        ("pixel5", 2),
        ("pixel6", 2),
        ("galaxy_a22", 2),
        ("galaxy_a53", 2),
        ("oai_ue", 6),
    )
    mean_think_time_s: float = 5.0
    channel: ChannelConfig = field(default_factory=lambda: DEFAULT_CHANNEL)


@dataclass
class AttackDatasetConfig:
    """Attack collection knobs: benign background + staggered attacks."""

    seed: int = 2
    duration_s: float = 150.0
    background_ue_mix: tuple = (("pixel5", 1), ("galaxy_a53", 1), ("oai_ue", 2))
    mean_think_time_s: float = 6.0
    channel: ChannelConfig = field(default_factory=lambda: DEFAULT_CHANNEL)
    # Instances per attack type (Figure 4 shows several per type).
    bts_dos_instances: int = 3
    blind_dos_instances: int = 2
    uplink_id_instances: int = 2
    downlink_id_instances: int = 2
    null_cipher_instances: int = 2


@dataclass
class CollectedDataset:
    """A finished capture: network, telemetry, attacks, scenario stats."""

    net: FiveGNetwork
    series: TelemetrySeries
    attacks: list
    stats: ScenarioStats

    def labeled(
        self,
        spec: FeatureSpec,
        window: int,
        name: str,
        mode: str = "session",
        cache=None,
    ) -> LabeledDataset:
        return LabeledDataset.build(
            name, self.series, spec, window, attacks=self.attacks, mode=mode, cache=cache
        )


def generate_benign_dataset(config: Optional[BenignDatasetConfig] = None) -> CollectedDataset:
    """Collect a benign capture (paper: >100 UE sessions, 4 handset models)."""
    config = config or BenignDatasetConfig()
    net = FiveGNetwork(NetworkConfig(seed=config.seed, channel=config.channel))
    scenario = ColosseumScenario(
        duration_s=config.duration_s,
        ue_mix=config.ue_mix,
        mean_think_time_s=config.mean_think_time_s,
    )
    stats = run_scenario(net, scenario)
    series = MobiFlowCollector().parse_stream(net.pcap)
    return CollectedDataset(net=net, series=series, attacks=[], stats=stats)


def generate_attack_dataset(config: Optional[AttackDatasetConfig] = None) -> CollectedDataset:
    """Collect a capture with all five attacks mixed into benign traffic."""
    config = config or AttackDatasetConfig()
    net = FiveGNetwork(NetworkConfig(seed=config.seed, channel=config.channel))
    scenario = ColosseumScenario(
        duration_s=config.duration_s,
        ue_mix=config.background_ue_mix,
        mean_think_time_s=config.mean_think_time_s,
    )
    stats = run_scenario(net, scenario, run=False)
    attacks: list = []
    timeline = net.sim.rng.stream("attack.timeline")

    # Victims for the targeted attacks register on their own schedule so the
    # MiTM window can catch their registration.
    def add_victim(start: float):
        victim = net.add_ue("pixel6", name=f"victim-{start:.0f}")
        net.sim.schedule(start, victim.start_session)
        stats.ues.append(victim)
        return victim

    cursor = 8.0
    for _ in range(config.bts_dos_instances):
        attacks.append(
            BtsDosAttack(net, start_time=cursor, connections=10, interval_s=0.08)
        )
        cursor += 12.0 + timeline.uniform(0.0, 3.0)
    for _ in range(config.blind_dos_instances):
        victim = add_victim(cursor - 4.0)
        attacks.append(
            BlindDosAttack(net, victim=victim, start_time=cursor, replays=6, interval_s=2.0)
        )
        cursor += 16.0 + timeline.uniform(0.0, 3.0)
    for _ in range(config.uplink_id_instances):
        victim = add_victim(cursor + 1.0)
        attacks.append(
            UplinkIdExtractionAttack(net, victim=victim, start_time=cursor, duration_s=8.0)
        )
        cursor += 10.0 + timeline.uniform(0.0, 3.0)
    for _ in range(config.downlink_id_instances):
        victim = add_victim(cursor + 1.0)
        attacks.append(
            DownlinkIdExtractionAttack(net, victim=victim, start_time=cursor, duration_s=8.0)
        )
        cursor += 10.0 + timeline.uniform(0.0, 3.0)
    for _ in range(config.null_cipher_instances):
        attacks.append(NullCipherAttack(net, start_time=cursor))
        cursor += 8.0 + timeline.uniform(0.0, 3.0)

    for attack in attacks:
        attack.arm()
    net.run(until=max(config.duration_s, cursor) + 30.0)
    series = MobiFlowCollector().parse_stream(net.pcap)
    return CollectedDataset(net=net, series=series, attacks=attacks, stats=stats)
