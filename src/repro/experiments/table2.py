"""Experiment E1 — Table 2: detection performance of the two models.

Reproduces the paper's §4.1 evaluation:

- train each model on benign telemetry only,
- **benign row**: k-fold cross-validation accuracy on held-out benign
  windows (no positives exist, so recall/F1 are N/A and the paper reports
  the no-alarm rate in both the accuracy and precision columns),
- **attack row**: window-level accuracy/precision/recall/F1 on the attack
  capture, plus event-level recall (did every attack *instance* raise at
  least one alarm — the sense in which the paper reports 100% detection).

Expected shape (not absolute numbers): AE >= LSTM, event recall 100% for
both, benign false alarms under 10%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.experiments.datasets import (
    AttackDatasetConfig,
    BenignDatasetConfig,
    CollectedDataset,
    generate_attack_dataset,
    generate_benign_dataset,
)
from repro.experiments.reporting import render_table
from repro.ml.detector import AutoencoderDetector, LstmDetector
from repro.ml.metrics import DetectionMetrics
from repro.telemetry.dataset import LabeledDataset
from repro.telemetry.features import FeatureSpec

# Paper Table 2 reference values (for the side-by-side report).
PAPER_TABLE2 = {
    ("benign", "autoencoder"): {"accuracy": "93.23%", "precision": "93.23%", "recall": "N/A", "f1": "N/A"},
    ("benign", "lstm"): {"accuracy": "91.15%", "precision": "91.15%", "recall": "N/A", "f1": "N/A"},
    ("attack", "autoencoder"): {"accuracy": "100%", "precision": "100%", "recall": "100%", "f1": "100%"},
    ("attack", "lstm"): {"accuracy": "95.00%", "precision": "88.68%", "recall": "100%", "f1": "94.00%"},
}


@dataclass
class Table2Config:
    """Experiment knobs (§4.1 defaults)."""

    window: int = 6
    spec: FeatureSpec = field(default_factory=FeatureSpec)
    epochs: int = 50
    lr: float = 2e-3
    seed: int = 7
    cv_folds: int = 3
    ae_percentile: float = 99.0
    # The LSTM's max-over-steps scores need a slightly lower operating
    # point than the AE's (see EXPERIMENTS.md); the paper does not pin
    # per-model thresholds.
    lstm_percentile: float = 97.5
    # Score LSTM windows with full session context (the deployed MobiWatch
    # semantics: every record's prediction uses its whole session prefix).
    lstm_session_context: bool = True
    benign: BenignDatasetConfig = field(default_factory=BenignDatasetConfig)
    attack: AttackDatasetConfig = field(default_factory=AttackDatasetConfig)


@dataclass
class ModelResult:
    """One (dataset, model) cell group of Table 2."""

    dataset: str
    model: str
    metrics: DetectionMetrics
    event_recall: Optional[float] = None

    def row(self) -> list:
        cells = self.metrics.as_row()
        if not self.metrics.has_positives:
            # Paper convention: the benign row repeats the no-alarm rate in
            # the precision column.
            cells["precision"] = cells["accuracy"]
        row = [self.dataset, self.model, cells["accuracy"], cells["precision"], cells["recall"], cells["f1"]]
        row.append("N/A" if self.event_recall is None else f"{100 * self.event_recall:.0f}%")
        paper = PAPER_TABLE2.get((self.dataset, self.model), {})
        row.append("/".join(paper.get(k, "?") for k in ("accuracy", "precision", "recall", "f1")))
        return row


@dataclass
class Table2Result:
    results: list
    config: Table2Config

    def render(self) -> str:
        headers = [
            "Dataset",
            "Model",
            "Accuracy",
            "Precision",
            "Recall",
            "F1",
            "EventRecall",
            "Paper(A/P/R/F1)",
        ]
        return render_table(
            headers,
            [result.row() for result in self.results],
            title="Table 2 — detection performance (reproduction vs. paper)",
        )

    def by_key(self, dataset: str, model: str) -> ModelResult:
        for result in self.results:
            if result.dataset == dataset and result.model == model:
                return result
        raise KeyError((dataset, model))


def _make_detector(model: str, config: Table2Config, trainfast=None):
    if model == "autoencoder":
        detector = AutoencoderDetector(
            window=config.window,
            feature_dim=config.spec.dim,
            percentile=config.ae_percentile,
            seed=config.seed,
        )
    else:
        detector = LstmDetector(
            window=config.window,
            feature_dim=config.spec.dim,
            percentile=config.lstm_percentile,
            seed=config.seed,
        )
    if trainfast is not None:
        detector.attach_trainfast(trainfast)
    return detector


def _use_session_context(model: str, config: Table2Config) -> bool:
    return model == "lstm" and config.lstm_session_context


def _benign_cv(
    model: str, benign: LabeledDataset, config: Table2Config, trainfast=None
) -> DetectionMetrics:
    """k-fold cross-validation false-alarm measurement on benign windows."""
    windows = benign.windowed.windows
    n = len(windows)
    folds = max(2, config.cv_folds)
    indices = np.arange(n)
    tp = fp = tn = fn = 0
    for fold in range(folds):
        held_mask = indices % folds == fold
        detector = _make_detector(model, config, trainfast)
        detector.fit(windows[~held_mask], epochs=config.epochs, lr=config.lr)
        if _use_session_context(model, config):
            scores = detector.session_window_scores(benign.windowed)
            detector.threshold.fit(scores[~held_mask])
            predictions = detector.threshold.classify(scores[held_mask])
        else:
            predictions = detector.detect(windows[held_mask])
        fp += int(predictions.sum())
        tn += int((~predictions).sum())
    return DetectionMetrics(tp=tp, fp=fp, tn=tn, fn=fn)


def _attack_eval(
    model: str,
    benign: LabeledDataset,
    attack: LabeledDataset,
    attack_capture: CollectedDataset,
    config: Table2Config,
    trainfast=None,
) -> ModelResult:
    detector = _make_detector(model, config, trainfast)
    if _use_session_context(model, config):
        detector.fit_with_session_context(
            benign.windowed, epochs=config.epochs, lr=config.lr
        )
        predictions = detector.threshold.classify(
            detector.session_window_scores(attack.windowed)
        )
    else:
        detector.fit(benign.windowed.windows, epochs=config.epochs, lr=config.lr)
        predictions = detector.detect(attack.windowed.windows)
    metrics = DetectionMetrics.from_labels(attack.window_labels, predictions)
    # Event-level recall: every armed attack instance must raise >=1 alarm.
    detected_instances = 0
    for instance in attack_capture.attacks:
        hit = any(
            predictions[i] and attack.window_attack(i) == instance.name
            for i in range(attack.num_windows)
            if attack.window_labels[i]
            and any(
                instance.is_malicious(attack.series[j])
                for j in attack.windowed.record_indices(i)
            )
        )
        detected_instances += int(hit)
    event_recall = detected_instances / len(attack_capture.attacks)
    return ModelResult(
        dataset="attack", model=model, metrics=metrics, event_recall=event_recall
    )


def run_table2(
    config: Optional[Table2Config] = None, trainfast=None
) -> Table2Result:
    """Run the full Table 2 experiment.

    ``trainfast`` (optional :class:`~repro.trainfast.settings.TrainfastSettings`)
    fans the four independent (model, dataset) evaluations across sweep
    workers, memoizes the capture encodes, and routes training through the
    compiled kernels. Results are merged in the seed's row order.
    """
    from repro.trainfast.sweep import sweep_tools

    config = config or Table2Config()
    benign_capture = generate_benign_dataset(config.benign)
    attack_capture = generate_attack_dataset(config.attack)
    runner, cache = sweep_tools(trainfast)
    benign = benign_capture.labeled(config.spec, config.window, "benign", cache=cache)
    attack = attack_capture.labeled(config.spec, config.window, "attack", cache=cache)

    def run_cell(task) -> ModelResult:
        model, dataset = task
        if dataset == "benign":
            return ModelResult(
                dataset="benign",
                model=model,
                metrics=_benign_cv(model, benign, config, trainfast),
            )
        return _attack_eval(model, benign, attack, attack_capture, config, trainfast)

    tasks = [
        (model, dataset)
        for model in ("autoencoder", "lstm")
        for dataset in ("benign", "attack")
    ]
    results = runner.map(run_cell, tasks)
    return Table2Result(results=results, config=config)
