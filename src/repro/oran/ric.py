"""Near-real-time RAN Intelligent Controller platform.

Assembles the RIC-side services around a simulated E2 link: E2 termination,
RMR routing, the SDL, and the xApp registry — the pieces of the OSC
reference platform the paper's Figure 3 uses. The control loop of the
near-RT RIC is designed to complete within 10 ms – 1 s (§2.1); the
platform's internal hops are sub-millisecond so the loop budget is spent in
the xApps, as in the real system.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.oran.e2term import E2Termination
from repro.oran.rmr import RmrRouter
from repro.oran.sdl import SharedDataLayer
from repro.ran.links import InterfaceLink
from repro.scale.settings import ScaleSettings
from repro.scale.sharded_sdl import ShardedSdl
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.oran.xapp import XApp


class NearRtRic:
    """The near-RT RIC: platform services + xApp host."""

    def __init__(
        self,
        sim: Simulator,
        e2: InterfaceLink,
        ric_id: str = "nrt-ric-0",
        scale: Optional[ScaleSettings] = None,
    ) -> None:
        self.sim = sim
        self.ric_id = ric_id
        self.scale = scale or ScaleSettings()
        if self.scale.sharding_enabled:
            # The clustered-Redis SDL topology of the production OSC RIC.
            self.sdl = ShardedSdl(
                shards=self.scale.sdl_shards,
                replication=self.scale.sdl_replication,
                vnodes=self.scale.sdl_vnodes,
                service_time_s=self.scale.sdl_service_time_s,
                metrics=sim.obs.metrics,
                clock=lambda: sim.now,
            )
        else:
            self.sdl = SharedDataLayer(metrics=sim.obs.metrics)
        self.rmr = RmrRouter(sim)
        self.e2term = E2Termination(sim, ric_id, e2, self.rmr, ingest=self.scale)
        self.xapps: dict[str, "XApp"] = {}

    def register_xapp(self, xapp: "XApp") -> None:
        if xapp.name in self.xapps:
            raise ValueError(f"xApp {xapp.name!r} already registered")
        self.xapps[xapp.name] = xapp
        self.rmr.register_endpoint(xapp.name, xapp.on_rmr)

    def deregister_xapp(self, name: str) -> None:
        xapp = self.xapps.pop(name, None)
        if xapp is not None:
            xapp.stop()
            self.rmr.remove_endpoint(name)

    def start(self) -> None:
        """Start every registered xApp."""
        for xapp in self.xapps.values():
            if not xapp.started:
                xapp.start()

    def deliver_policy(self, xapp_name: str, policy_type_id: int, policy: dict) -> None:
        """A1 entry point: hand a policy instance to an xApp."""
        xapp = self.xapps.get(xapp_name)
        if xapp is None:
            raise KeyError(f"no xApp named {xapp_name!r}")
        xapp.on_policy(policy_type_id, policy)
