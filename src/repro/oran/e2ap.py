"""E2 Application Protocol (E2AP) PDUs — O-RAN WG3 E2AP spec, simplified.

The four interaction primitives the paper names (§2.1) are covered:
**report** (subscription + indication), **insert**, **control** (control
request/ack), and **policy** (subscription with a policy action type). PDUs
serialize through :mod:`repro.wire` and travel over an
:class:`~repro.ran.links.InterfaceLink` named ``E2``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, ClassVar, Dict, Type

from repro import wire


class E2apError(ValueError):
    """Raised on malformed E2AP PDUs."""


class ActionType(enum.Enum):
    """RIC action types (E2AP §8.2)."""

    REPORT = "report"
    INSERT = "insert"
    POLICY = "policy"


_PDU_REGISTRY: Dict[str, Type["E2apPdu"]] = {}


@dataclass
class E2apPdu:
    """Base class for E2AP PDUs with TLV serialization."""

    PDU: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.PDU:
            if cls.PDU in _PDU_REGISTRY and _PDU_REGISTRY[cls.PDU] is not cls:
                raise E2apError(f"duplicate E2AP PDU {cls.PDU!r}")
            _PDU_REGISTRY[cls.PDU] = cls

    def to_wire(self) -> bytes:
        ies: Dict[str, Any] = {}
        for f in dataclass_fields(self):
            value = getattr(self, f.name)
            if isinstance(value, enum.Enum):
                value = value.value
            ies[f.name] = value
        return wire.encode({"pdu": type(self).PDU, "ie": ies})

    @staticmethod
    def from_wire(data: bytes) -> "E2apPdu":
        try:
            blob = wire.decode(data)
        except wire.WireError as exc:
            raise E2apError(f"undecodable E2AP PDU: {exc}") from exc
        if not isinstance(blob, dict) or "pdu" not in blob:
            raise E2apError("not an E2AP PDU envelope")
        cls = _PDU_REGISTRY.get(blob["pdu"])
        if cls is None:
            raise E2apError(f"unknown E2AP PDU {blob['pdu']!r}")
        ies = blob.get("ie", {})
        kwargs: Dict[str, Any] = {}
        for f in dataclass_fields(cls):
            if f.name not in ies:
                raise E2apError(f"{blob['pdu']}: missing IE {f.name!r}")
            value = ies[f.name]
            if f.type in ("ActionType",) and value is not None:
                value = ActionType(value)
            kwargs[f.name] = value
        return cls(**kwargs)

    @property
    def pdu_name(self) -> str:
        return type(self).PDU


@dataclass
class E2SetupRequest(E2apPdu):
    """E2 node -> RIC: announce supported RAN functions."""

    PDU = "E2SetupRequest"

    e2_node_id: str = ""
    # ran_function_id -> human-readable definition string
    ran_functions: dict = field(default_factory=dict)


@dataclass
class E2SetupResponse(E2apPdu):
    """RIC -> E2 node: accept the connection."""

    PDU = "E2SetupResponse"

    ric_id: str = ""
    accepted_functions: list = field(default_factory=list)


@dataclass
class RicSubscriptionRequest(E2apPdu):
    """RIC -> E2 node: subscribe an xApp to a RAN function."""

    PDU = "RICSubscriptionRequest"

    ric_request_id: int = 0
    ran_function_id: int = 0
    # Service-model-specific event trigger (e.g. report period), encoded.
    event_trigger: bytes = b""
    action_type: ActionType = ActionType.REPORT


@dataclass
class RicSubscriptionResponse(E2apPdu):
    """E2 node -> RIC: subscription admitted."""

    PDU = "RICSubscriptionResponse"

    ric_request_id: int = 0
    ran_function_id: int = 0
    admitted: bool = True


@dataclass
class RicSubscriptionDeleteRequest(E2apPdu):
    """RIC -> E2 node: remove a subscription (and any installed policy)."""

    PDU = "RICSubscriptionDeleteRequest"

    ric_request_id: int = 0
    ran_function_id: int = 0


@dataclass
class RicIndication(E2apPdu):
    """E2 node -> RIC: a report/insert indication for a subscription."""

    PDU = "RICIndication"

    ric_request_id: int = 0
    ran_function_id: int = 0
    sequence_number: int = 0
    # Service-model-specific header and message payloads.
    indication_header: bytes = b""
    indication_message: bytes = b""


@dataclass
class RicControlRequest(E2apPdu):
    """RIC -> E2 node: execute a control action on the RAN."""

    PDU = "RICControlRequest"

    ric_request_id: int = 0
    ran_function_id: int = 0
    control_header: bytes = b""
    control_message: bytes = b""
    ack_requested: bool = True


@dataclass
class RicControlAck(E2apPdu):
    """E2 node -> RIC: control action outcome."""

    PDU = "RICControlAck"

    ric_request_id: int = 0
    ran_function_id: int = 0
    success: bool = True
    outcome: str = ""


@dataclass
class RicServiceUpdate(E2apPdu):
    """E2 node -> RIC: RAN function definitions changed."""

    PDU = "RICServiceUpdate"

    e2_node_id: str = ""
    ran_functions: dict = field(default_factory=dict)
