"""xApp base class — control-plane applications hosted by the near-RT RIC.

An xApp registers with the RIC, subscribes to RAN functions, receives
indications and control acks over RMR, reads/writes the SDL, and can
receive A1 policies. MobiWatch and the LLM analyzer (:mod:`repro.core`)
are built on this class.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.oran.e2ap import (
    ActionType,
    RicControlAck,
    RicIndication,
    RicSubscriptionResponse,
)
from repro.oran.rmr import RIC_CONTROL_ACK, RIC_INDICATION, RIC_SUB_RESP
from repro.sim.entity import Entity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.oran.ric import NearRtRic


class XApp(Entity):
    """Base class for near-RT RIC applications."""

    VERSION = "1.0.0"

    def __init__(self, ric: "NearRtRic", name: str) -> None:
        super().__init__(ric.sim, name)
        self.ric = ric
        self.subscription_ids: list[int] = []
        self.started = False
        ric.register_xapp(self)

    @property
    def sdl(self):
        return self.ric.sdl

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Called by the RIC once the platform is up. Override and call super."""
        self.started = True

    def stop(self) -> None:
        self.started = False

    # -- subscriptions / control ----------------------------------------------------

    def subscribe(
        self,
        ran_function_id: int,
        event_trigger: bytes,
        action_type: ActionType = ActionType.REPORT,
    ) -> int:
        sub_id = self.ric.e2term.subscribe(
            self.name, ran_function_id, event_trigger, action_type
        )
        self.subscription_ids.append(sub_id)
        return sub_id

    def send_control(
        self, ran_function_id: int, control_header: bytes, control_message: bytes
    ) -> int:
        return self.ric.e2term.send_control(
            self.name, ran_function_id, control_header, control_message
        )

    # -- RMR dispatch --------------------------------------------------------------------

    def on_rmr(self, mtype: int, sub_id: int, payload: Any) -> None:
        if mtype == RIC_INDICATION and isinstance(payload, RicIndication):
            self.on_indication(payload)
        elif mtype == RIC_SUB_RESP and isinstance(payload, RicSubscriptionResponse):
            self.on_subscription_response(payload)
        elif mtype == RIC_CONTROL_ACK and isinstance(payload, RicControlAck):
            self.on_control_ack(payload)
        else:
            self.on_message(mtype, sub_id, payload)

    # -- override points ------------------------------------------------------------------

    def on_indication(self, indication: RicIndication) -> None:
        """Handle a RIC indication for one of this xApp's subscriptions."""

    def on_subscription_response(self, response: RicSubscriptionResponse) -> None:
        if not response.admitted:
            self.log(f"subscription {response.ric_request_id} rejected")

    def on_control_ack(self, ack: RicControlAck) -> None:
        self.log(f"control {ack.ric_request_id}: {ack.outcome}")

    def on_policy(self, policy_type_id: int, policy: dict) -> None:
        """Handle an A1 policy instance targeted at this xApp."""

    def on_message(self, mtype: int, sub_id: int, payload: Any) -> None:
        self.log(f"unhandled RMR message type {mtype}")
