"""RMR-style message routing inside the near-RT RIC.

The OSC platform routes messages between platform services and xApps by
(message type, subscription id). We reproduce that contract with an
in-process router: endpoints register handlers, routes bind a routing key to
an endpoint, and sends are delivered asynchronously through the simulator
(small fixed latency, like the real RMR's socket hop).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.sim.engine import Simulator

# OSC RMR message type numbers (subset).
RIC_SUB_REQ = 12010
RIC_SUB_RESP = 12011
RIC_INDICATION = 12050
RIC_CONTROL_REQ = 12040
RIC_CONTROL_ACK = 12041
A1_POLICY_REQ = 20010

Handler = Callable[[int, int, Any], None]  # (mtype, sub_id, payload)


class RoutingError(LookupError):
    """Raised when no route exists for a message."""


class RmrRouter:
    """In-process (mtype, subscription id) router."""

    INTERNAL_LATENCY_S = 0.0001

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._endpoints: dict[str, Handler] = {}
        # (mtype, sub_id) -> endpoint names; sub_id -1 matches any.
        self._routes: dict[tuple[int, int], list[str]] = {}
        self.messages_routed = 0
        self.messages_dropped = 0
        metrics = sim.obs.metrics
        self._routed_counter = metrics.counter(
            "rmr.messages_routed_total", help="messages delivered to endpoints"
        )
        self._dropped_counter = metrics.counter(
            "rmr.messages_dropped_total", help="messages with no matching route"
        )
        self._handler_wall = metrics.histogram(
            "rmr.handler_wall_s", help="wall-clock cost of endpoint handlers"
        )
        # Per-mtype counters, cached so the send path stays one dict hit.
        self._mtype_counters: dict[int, Any] = {}

    def register_endpoint(self, name: str, handler: Handler) -> None:
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already registered")
        self._endpoints[name] = handler

    def remove_endpoint(self, name: str) -> None:
        self._endpoints.pop(name, None)
        for key in list(self._routes):
            self._routes[key] = [e for e in self._routes[key] if e != name]

    def add_route(self, mtype: int, endpoint: str, sub_id: int = -1) -> None:
        if endpoint not in self._endpoints:
            raise RoutingError(f"unknown endpoint {endpoint!r}")
        self._routes.setdefault((mtype, sub_id), [])
        if endpoint not in self._routes[(mtype, sub_id)]:
            self._routes[(mtype, sub_id)].append(endpoint)

    def remove_route(self, mtype: int, endpoint: str, sub_id: int = -1) -> None:
        names = self._routes.get((mtype, sub_id), [])
        if endpoint in names:
            names.remove(endpoint)

    def routes_for(self, mtype: int, sub_id: int) -> list[str]:
        exact = self._routes.get((mtype, sub_id), [])
        wildcard = self._routes.get((mtype, -1), [])
        return list(dict.fromkeys(exact + wildcard))

    def send(self, mtype: int, sub_id: int, payload: Any) -> int:
        """Route a message; returns the number of endpoints it reached."""
        names = self.routes_for(mtype, sub_id)
        if not names:
            self.messages_dropped += 1
            self._dropped_counter.inc()
            return 0
        delivered = 0
        for name in names:
            handler = self._endpoints.get(name)
            if handler is None:
                continue
            delivered += 1
            self.sim.schedule(
                self.INTERNAL_LATENCY_S,
                lambda h=handler: self._deliver(h, mtype, sub_id, payload),
                name=f"rmr.{mtype}",
            )
        self.messages_routed += delivered
        self._routed_counter.inc(delivered)
        counter = self._mtype_counters.get(mtype)
        if counter is None:
            counter = self._mtype_counters[mtype] = self.sim.obs.metrics.counter(
                "rmr.messages_total", labels={"mtype": str(mtype)}
            )
        counter.inc(delivered)
        return delivered

    def _deliver(self, handler: Handler, mtype: int, sub_id: int, payload: Any) -> None:
        start = time.perf_counter()
        try:
            handler(mtype, sub_id, payload)
        finally:
            self._handler_wall.observe(time.perf_counter() - start)
