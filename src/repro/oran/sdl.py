"""Shared Data Layer (SDL): the near-RT RIC's common datastore.

The OSC RIC exposes a Redis-backed namespaced key-value store shared by all
platform services and xApps. We reproduce the same contract: values are
stored as *bytes* (serialized through :mod:`repro.wire`, enforcing that
everything written is wire-encodable, as the real SDL enforces
serializability), namespaced keys, and watch callbacks so xApps can react to
new telemetry.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, Optional

from repro import wire
from repro.obs.metrics import MetricsRegistry

WatchCallback = Callable[[str, str, Any], None]  # (namespace, key, value)


class SdlError(KeyError):
    """Raised when a key is missing."""


class SharedDataLayer:
    """Namespaced key-value store with watch support."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._data: dict[str, dict[str, bytes]] = {}
        self._watchers: dict[str, list[WatchCallback]] = {}
        self.writes = 0
        self.reads = 0
        # Standalone SDLs (unit tests, offline tools) get a private registry.
        metrics = metrics or MetricsRegistry()
        self._writes_counter = metrics.counter("sdl.writes_total")
        self._reads_counter = metrics.counter("sdl.reads_total")
        self._value_bytes = metrics.histogram(
            "sdl.value_bytes",
            buckets=(16, 64, 256, 1024, 4096, 16384, 65536),
            help="encoded value sizes",
        )
        self._write_wall = metrics.histogram(
            "sdl.write_wall_s", help="wall-clock cost of encode+store+watch"
        )
        self._watch_errors = metrics.counter(
            "sdl.watch_errors_total", help="watch callbacks that raised"
        )

    # -- core KV -------------------------------------------------------------

    def set(self, namespace: str, key: str, value: Any) -> None:
        """Store ``value`` (must be wire-encodable) under ``namespace/key``."""
        start = time.perf_counter()
        encoded = wire.encode(value)
        self._data.setdefault(namespace, {})[key] = encoded
        self.writes += 1
        self._writes_counter.inc()
        self._value_bytes.observe(len(encoded))
        for callback in self._watchers.get(namespace, []):
            # A raising watcher must not abort the write, skip the
            # remaining watchers, or lose the write_wall observation.
            try:
                callback(namespace, key, value)
            except Exception:
                self._watch_errors.inc()
        self._write_wall.observe(time.perf_counter() - start)

    def set_many(self, namespace: str, pairs: list[tuple[str, Any]]) -> None:
        """Store a batch of ``(key, value)`` pairs as one acked write
        (repro.genfast). Values are encoded and watchers notified exactly as
        ``set`` does per pair, but the write/wall bookkeeping is paid once
        per batch: one ``writes`` increment, one summed ``value_bytes``
        observation, one ``write_wall`` span."""
        if not pairs:
            return
        start = time.perf_counter()
        ns = self._data.setdefault(namespace, {})
        total_bytes = 0
        for key, value in pairs:
            encoded = wire.encode(value)
            ns[key] = encoded
            total_bytes += len(encoded)
        self.writes += 1
        self._writes_counter.inc()
        self._value_bytes.observe(total_bytes)
        watchers = self._watchers.get(namespace, [])
        for callback in watchers:
            for key, value in pairs:
                try:
                    callback(namespace, key, value)
                except Exception:
                    self._watch_errors.inc()
        self._write_wall.observe(time.perf_counter() - start)

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        self.reads += 1
        self._reads_counter.inc()
        ns = self._data.get(namespace)
        if ns is None or key not in ns:
            return default
        return wire.decode(ns[key])

    def require(self, namespace: str, key: str) -> Any:
        value = self.get(namespace, key, default=_MISSING)
        if value is _MISSING:
            raise SdlError(f"{namespace}/{key} not found")
        return value

    def delete(self, namespace: str, key: str) -> bool:
        ns = self._data.get(namespace)
        if ns is None or key not in ns:
            return False
        del ns[key]
        return True

    def keys(self, namespace: str) -> list[str]:
        return sorted(self._data.get(namespace, {}))

    def namespaces(self) -> list[str]:
        return sorted(self._data)

    # -- append-only lists (telemetry queues) ----------------------------------

    def append(self, namespace: str, key: str, item: Any) -> int:
        """Append to a list value, creating it if needed. Returns new length."""
        current = self.get(namespace, key, default=[])
        if not isinstance(current, list):
            raise TypeError(f"{namespace}/{key} is not a list")
        current.append(item)
        self.set(namespace, key, current)
        return len(current)

    def items(self, namespace: str) -> Iterator[tuple[str, Any]]:
        for key in self.keys(namespace):
            yield key, self.get(namespace, key)

    # -- watches -----------------------------------------------------------------

    def watch(self, namespace: str, callback: WatchCallback) -> None:
        """Call ``callback`` on every write into ``namespace``."""
        self._watchers.setdefault(namespace, []).append(callback)

    def unwatch(self, namespace: str, callback: WatchCallback) -> None:
        watchers = self._watchers.get(namespace, [])
        if callback in watchers:
            watchers.remove(callback)


_MISSING = object()
