"""Service Management and Orchestration (SMO) with a non-RT RIC.

Per the paper (§2.1, §3.2): time-insensitive tasks — notably ML model
training — run in the SMO as rApps on the non-real-time RIC, and trained
models are then deployed into the near-RT xApps ("Train -> Deploy" in
Figure 3). This module provides the rApp base class, a training-job
workflow with an ML model catalog, and the A1 interface toward the near-RT
RIC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.oran.a1 import (
    A1Interface,
    DETECTION_POLICY_TYPE,
    RESPONSE_POLICY_TYPE,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.oran.ric import NearRtRic


class JobState(enum.Enum):
    PENDING = "pending"
    COLLECTING = "collecting"
    TRAINING = "training"
    DEPLOYED = "deployed"
    FAILED = "failed"


@dataclass
class TrainingJob:
    """One train-then-deploy workflow instance."""

    name: str
    collect: Callable[[], Any]
    train: Callable[[Any], Any]
    deploy: Callable[[Any], None]
    state: JobState = JobState.PENDING
    error: Optional[str] = None
    model: Any = None


class RApp:
    """Base class for non-real-time RIC applications."""

    def __init__(self, smo: "Smo", name: str) -> None:
        self.smo = smo
        self.name = name
        smo.register_rapp(self)

    def run(self) -> None:
        """Override with the rApp's (non-real-time) logic."""


class Smo:
    """SMO hosting the non-RT RIC: rApps, model catalog, A1."""

    def __init__(self, ric: "NearRtRic") -> None:
        self.ric = ric
        self.a1 = A1Interface(ric)
        self.a1.register_policy_type(DETECTION_POLICY_TYPE)
        self.a1.register_policy_type(RESPONSE_POLICY_TYPE)
        self.rapps: dict[str, RApp] = {}
        self.jobs: dict[str, TrainingJob] = {}
        # Deployed-model catalog: name -> model object.
        self.model_catalog: dict[str, Any] = {}

    def register_rapp(self, rapp: RApp) -> None:
        if rapp.name in self.rapps:
            raise ValueError(f"rApp {rapp.name!r} already registered")
        self.rapps[rapp.name] = rapp

    def submit_training_job(
        self,
        name: str,
        collect: Callable[[], Any],
        train: Callable[[Any], Any],
        deploy: Callable[[Any], None],
    ) -> TrainingJob:
        """Register a train-then-deploy job (run it with :meth:`run_job`)."""
        if name in self.jobs:
            raise ValueError(f"job {name!r} already submitted")
        job = TrainingJob(name=name, collect=collect, train=train, deploy=deploy)
        self.jobs[name] = job
        return job

    def run_job(self, name: str) -> TrainingJob:
        """Execute a job synchronously (training is non-real-time)."""
        job = self.jobs[name]
        try:
            job.state = JobState.COLLECTING
            dataset = job.collect()
            job.state = JobState.TRAINING
            job.model = job.train(dataset)
            job.deploy(job.model)
            self.model_catalog[name] = job.model
            job.state = JobState.DEPLOYED
        except Exception as exc:  # noqa: BLE001 - job failures are data
            job.state = JobState.FAILED
            job.error = f"{type(exc).__name__}: {exc}"
        return job
