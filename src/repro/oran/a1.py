"""A1 interface: policy management from the non-RT RIC to the near-RT RIC.

Models the A1-P policy service: the SMO/non-RT RIC creates typed policy
instances; the near-RT RIC validates them against the declared schema and
delivers them to target xApps. 6G-XSec uses this to push detection
thresholds and response policies down to MobiWatch at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.oran.ric import NearRtRic


class A1Error(ValueError):
    """Raised on invalid policies."""


@dataclass(frozen=True)
class A1PolicyType:
    """Schema for a class of policies."""

    policy_type_id: int
    name: str
    # key -> python type the value must have
    schema: dict = field(default_factory=dict)

    def validate(self, policy: dict) -> None:
        for key, expected in self.schema.items():
            if key not in policy:
                raise A1Error(f"policy missing required key {key!r}")
            if not isinstance(policy[key], expected):
                raise A1Error(
                    f"policy key {key!r} must be {expected.__name__}, "
                    f"got {type(policy[key]).__name__}"
                )
        unknown = set(policy) - set(self.schema)
        if unknown:
            raise A1Error(f"policy has unknown keys {sorted(unknown)}")


# The policy types 6G-XSec registers.
DETECTION_POLICY_TYPE = A1PolicyType(
    policy_type_id=20008,
    name="xsec-detection-policy",
    schema={"threshold_percentile": float, "window_size": int},
)

RESPONSE_POLICY_TYPE = A1PolicyType(
    policy_type_id=20009,
    name="xsec-response-policy",
    schema={"auto_release": bool, "auto_blocklist": bool},
)


class A1Interface:
    """Non-RT RIC side of A1: create and push policy instances."""

    def __init__(self, ric: "NearRtRic") -> None:
        self.ric = ric
        self._types: dict[int, A1PolicyType] = {}
        # (type_id, instance_id) -> policy dict
        self._instances: dict[tuple[int, str], dict] = {}

    def register_policy_type(self, policy_type: A1PolicyType) -> None:
        if policy_type.policy_type_id in self._types:
            raise A1Error(f"policy type {policy_type.policy_type_id} already registered")
        self._types[policy_type.policy_type_id] = policy_type

    def policy_types(self) -> list[int]:
        return sorted(self._types)

    def put_policy(
        self, policy_type_id: int, instance_id: str, policy: dict, target_xapp: str
    ) -> None:
        """Validate and deliver a policy instance to an xApp."""
        policy_type = self._types.get(policy_type_id)
        if policy_type is None:
            raise A1Error(f"unknown policy type {policy_type_id}")
        policy_type.validate(policy)
        self._instances[(policy_type_id, instance_id)] = dict(policy)
        self.ric.deliver_policy(target_xapp, policy_type_id, dict(policy))

    def get_policy(self, policy_type_id: int, instance_id: str) -> Optional[dict]:
        return self._instances.get((policy_type_id, instance_id))

    def delete_policy(self, policy_type_id: int, instance_id: str) -> bool:
        return self._instances.pop((policy_type_id, instance_id), None) is not None
