"""O-RAN control plane: near-RT RIC, E2 stack, xApp framework, SMO.

Substitute for the OSC near-RT RIC reference implementation the paper
deploys. The moving parts mirror Figure 3 of the paper:

- :mod:`.e2ap` — E2 Application Protocol PDUs (setup, subscription,
  indication, control) over a byte-level link;
- :mod:`.e2sm` / :mod:`.e2sm_kpm` — service models; the KPM model is
  extended to carry MobiFlow security telemetry as (key, value) data;
- :mod:`.e2agent` — the RIC agent embedded in the CU: taps F1AP/NGAP,
  extracts telemetry, reports per interval, executes control actions;
- :mod:`.e2term` + :mod:`.ric` — E2 termination and the near-RT RIC
  platform (RMR routing, SDL, xApp lifecycle);
- :mod:`.sdl` — the Shared Data Layer where telemetry is stored;
- :mod:`.xapp` — base class for control-plane applications;
- :mod:`.a1` / :mod:`.smo` — non-real-time side: policies, rApps, and the
  train-then-deploy ML workflow.
"""

from repro.oran.sdl import SharedDataLayer
from repro.oran.e2ap import (
    E2SetupRequest,
    E2SetupResponse,
    RicControlAck,
    RicControlRequest,
    RicIndication,
    RicSubscriptionRequest,
    RicSubscriptionResponse,
)
from repro.oran.e2sm_kpm import MOBIFLOW_RAN_FUNCTION_ID, MobiFlowReportStyle
from repro.oran.e2agent import RicAgent
from repro.oran.ric import NearRtRic
from repro.oran.xapp import XApp
from repro.oran.smo import Smo

__all__ = [
    "SharedDataLayer",
    "E2SetupRequest",
    "E2SetupResponse",
    "RicControlAck",
    "RicControlRequest",
    "RicIndication",
    "RicSubscriptionRequest",
    "RicSubscriptionResponse",
    "MOBIFLOW_RAN_FUNCTION_ID",
    "MobiFlowReportStyle",
    "RicAgent",
    "NearRtRic",
    "XApp",
    "Smo",
]
