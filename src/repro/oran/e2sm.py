"""E2 Service Model base abstractions (O-RAN WG3 E2SM spec).

A service model gives meaning to the opaque header/message bytes inside
E2AP subscriptions, indications and controls. Each model owns a RAN function
id and knows how to encode/decode its event triggers and payloads.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

from repro import wire


class E2smError(ValueError):
    """Raised on service-model payload mismatches."""


@dataclass(frozen=True)
class RanFunctionDefinition:
    """What an E2 node advertises in E2 Setup for one RAN function."""

    ran_function_id: int
    name: str
    description: str
    revision: int = 1

    def to_value(self) -> dict:
        return {
            "ran_function_id": self.ran_function_id,
            "name": self.name,
            "description": self.description,
            "revision": self.revision,
        }


class ServiceModel(abc.ABC):
    """Base class for E2 service models."""

    RAN_FUNCTION_ID: int = 0
    NAME: str = ""

    @classmethod
    def definition(cls) -> RanFunctionDefinition:
        return RanFunctionDefinition(
            ran_function_id=cls.RAN_FUNCTION_ID,
            name=cls.NAME,
            description=cls.__doc__.strip().splitlines()[0] if cls.__doc__ else "",
        )

    # -- event triggers ---------------------------------------------------------

    @classmethod
    def encode_event_trigger(cls, trigger: dict) -> bytes:
        return wire.encode({"sm": cls.NAME, "trigger": trigger})

    @classmethod
    def decode_event_trigger(cls, data: bytes) -> dict:
        blob = wire.decode(data)
        if not isinstance(blob, dict) or blob.get("sm") != cls.NAME:
            raise E2smError(f"event trigger is not for service model {cls.NAME}")
        trigger = blob.get("trigger")
        if not isinstance(trigger, dict):
            raise E2smError("malformed event trigger")
        return trigger

    # -- indication payloads -------------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def encode_indication(cls, payload: Any) -> tuple[bytes, bytes]:
        """Return (indication_header, indication_message) bytes."""

    @classmethod
    @abc.abstractmethod
    def decode_indication(cls, header: bytes, message: bytes) -> Any:
        """Inverse of :meth:`encode_indication`."""
