"""E2SM-KPM extended with MobiFlow security telemetry (paper §3.1).

The paper extends the O-RAN E2SM-KPM service model so the RIC agent can
report fine-grained security telemetry "via the E2 report operation per time
interval, where the telemetry can be encoded as (key, value) data". This
module is that extension: the event trigger carries the report period; each
indication carries a batch of KV-encoded MobiFlow records.

A second control-style section (``SecurityControl``) models the subset of
E2SM-RC actions the paper's closed loop needs (§5, Automated Network
Responses): releasing a UE and blocklisting a temporary identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro import wire
from repro.oran.e2sm import E2smError, ServiceModel
from repro.telemetry.batch import MobiFlowBatch
from repro.telemetry.encoder import (
    decode_batch,
    decode_batch_columnar,
    encode_batch,
    encode_batch_columnar,
)
from repro.telemetry.mobiflow import MobiFlowRecord

MOBIFLOW_RAN_FUNCTION_ID = 142  # KPM is 2; we register the extension as 142.

# Control actions (E2SM-RC RAN-control style, §5 of the paper).
ACTION_RELEASE_UE = "release_ue"
ACTION_BLOCKLIST_TMSI = "blocklist_tmsi"
ACTION_UNBLOCK_TMSI = "unblock_tmsi"
# dApp-style real-time radio control (paper §5): cap the admitted
# RRCSetupRequest rate at the DU — the effective response to floods that
# hop identifiers faster than per-UE releases can track.
ACTION_RATE_LIMIT_ACCESS = "rate_limit_access"
ACTION_CLEAR_RATE_LIMIT = "clear_rate_limit"
KNOWN_ACTIONS = (
    ACTION_RELEASE_UE,
    ACTION_BLOCKLIST_TMSI,
    ACTION_UNBLOCK_TMSI,
    ACTION_RATE_LIMIT_ACCESS,
    ACTION_CLEAR_RATE_LIMIT,
)


@dataclass(frozen=True)
class MobiFlowReportStyle:
    """Event trigger for periodic MobiFlow reporting."""

    report_period_s: float = 0.1
    # Upper bound of records per indication (0 = unbounded).
    max_records_per_indication: int = 0

    def to_trigger(self) -> dict:
        return {
            "style": "mobiflow-report",
            "period_s": self.report_period_s,
            "max_records": self.max_records_per_indication,
        }

    @classmethod
    def from_trigger(cls, trigger: dict) -> "MobiFlowReportStyle":
        if trigger.get("style") != "mobiflow-report":
            raise E2smError(f"unexpected trigger style {trigger.get('style')!r}")
        return cls(
            report_period_s=float(trigger["period_s"]),
            max_records_per_indication=int(trigger.get("max_records", 0)),
        )


@dataclass(frozen=True)
class AccessRatePolicy:
    """POLICY-type subscription payload: a fast-path rule installed *at the
    E2 node* (paper §2.1's policy primitive) — the DU autonomously caps the
    admitted setup-request rate with no per-event RIC round trip."""

    max_setups: int = 3
    window_s: float = 1.0

    def to_trigger(self) -> dict:
        return {
            "style": "access-rate-policy",
            "max_setups": self.max_setups,
            "window_s": self.window_s,
        }

    @classmethod
    def from_trigger(cls, trigger: dict) -> "AccessRatePolicy":
        if trigger.get("style") != "access-rate-policy":
            raise E2smError(f"unexpected trigger style {trigger.get('style')!r}")
        return cls(
            max_setups=int(trigger["max_setups"]),
            window_s=float(trigger["window_s"]),
        )


class MobiFlowKpmModel(ServiceModel):
    """E2SM-KPM extension carrying MobiFlow security telemetry."""

    RAN_FUNCTION_ID = MOBIFLOW_RAN_FUNCTION_ID
    NAME = "ORAN-E2SM-KPM-MobiFlow"

    @classmethod
    def encode_indication(cls, payload: Any) -> tuple[bytes, bytes]:
        """Encode a telemetry batch into header + message bytes.

        A :class:`MobiFlowBatch` payload (repro.genfast) ships columnar —
        struct-of-arrays with per-batch vocab ids; a record list ships as
        the seed's per-record KV dicts. Both decode to the identical record
        stream.
        """
        if isinstance(payload, MobiFlowBatch):
            header = wire.encode(
                {"sm": cls.NAME, "count": len(payload), "columnar": True}
            )
            return header, encode_batch_columnar(payload)
        records: list[MobiFlowRecord] = list(payload)
        header = wire.encode({"sm": cls.NAME, "count": len(records)})
        message = encode_batch(records)
        return header, message

    @classmethod
    def decode_indication(cls, header: bytes, message: bytes) -> list[MobiFlowRecord]:
        meta = wire.decode(header)
        if not isinstance(meta, dict) or meta.get("sm") != cls.NAME:
            raise E2smError("indication header is not MobiFlow-KPM")
        if meta.get("columnar"):
            records = decode_batch_columnar(message).to_records()
        else:
            records = decode_batch(message)
        if meta.get("count") != len(records):
            raise E2smError(
                f"indication count mismatch: header says {meta.get('count')}, "
                f"payload has {len(records)}"
            )
        return records

    # -- control actions --------------------------------------------------------

    @classmethod
    def encode_control(cls, action: str, **params: Any) -> tuple[bytes, bytes]:
        if action not in KNOWN_ACTIONS:
            raise E2smError(f"unknown control action {action!r}")
        header = wire.encode({"sm": cls.NAME, "action": action})
        message = wire.encode(dict(params))
        return header, message

    @classmethod
    def decode_control(cls, header: bytes, message: bytes) -> tuple[str, dict]:
        meta = wire.decode(header)
        if not isinstance(meta, dict) or meta.get("sm") != cls.NAME:
            raise E2smError("control header is not MobiFlow-KPM")
        action = meta.get("action")
        if action not in KNOWN_ACTIONS:
            raise E2smError(f"unknown control action {action!r}")
        params = wire.decode(message)
        if not isinstance(params, dict):
            raise E2smError("control params are not a dict")
        return action, params
