"""Zero-trust O-RAN: E2 interface authentication (paper §5).

The paper warns that "unprotected O-RAN interfaces and services could be
potentially exploited ... malicious adversaries may poison the AI models
with malicious telemetry", and calls for a zero-trust architecture. This
module adds exactly that for the E2 interface:

- :class:`E2Authenticator` — HMAC-SHA256 message authentication over every
  E2AP PDU, with per-node pre-shared keys and a monotonically increasing
  nonce to stop replays;
- :class:`AuthenticatedE2Endpoint` — a wrapper both ends of the E2 link
  run: it seals outbound envelopes and verifies inbound ones, dropping
  (and counting) anything unauthenticated, tampered, or replayed.

The poisoning experiment in :mod:`repro.experiments.poisoning` shows the
threat end to end: a rogue E2 node injecting fabricated MobiFlow
indications is accepted by an unprotected RIC (polluting the SDL and the
training data) and rejected cell-for-cell by an authenticated one.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import wire


class E2AuthError(ValueError):
    """Raised on authentication configuration errors."""


@dataclass
class E2Authenticator:
    """HMAC-based sealing/verification of E2AP PDU bytes."""

    node_id: str
    key: bytes
    _send_nonce: int = 0
    _highest_seen: dict = field(default_factory=dict)

    def seal(self, payload: bytes) -> bytes:
        """Wrap PDU bytes in an authenticated envelope."""
        self._send_nonce += 1
        body = {
            "node": self.node_id,
            "nonce": self._send_nonce,
            "pdu": payload,
        }
        mac = hmac.new(
            self.key, self._mac_input(self.node_id, self._send_nonce, payload),
            hashlib.sha256,
        ).digest()
        body["mac"] = mac
        return wire.encode(body)

    @staticmethod
    def _mac_input(node: str, nonce: int, payload: bytes) -> bytes:
        return node.encode("utf-8") + nonce.to_bytes(8, "big") + payload

    def verify(self, data: bytes, keyring: dict[str, bytes]) -> Optional[bytes]:
        """Verify an envelope against a node->key ring.

        Returns the inner PDU bytes, or ``None`` when the envelope is
        malformed, signed by an unknown node, carries a bad MAC, or replays
        an old nonce.
        """
        try:
            body = wire.decode(data)
        except wire.WireError:
            return None
        if not isinstance(body, dict):
            return None
        node = body.get("node")
        nonce = body.get("nonce")
        payload = body.get("pdu")
        mac = body.get("mac")
        if (
            not isinstance(node, str)
            or not isinstance(nonce, int)
            or not isinstance(payload, bytes)
            or not isinstance(mac, bytes)
        ):
            return None
        key = keyring.get(node)
        if key is None:
            return None
        expected = hmac.new(
            key, self._mac_input(node, nonce, payload), hashlib.sha256
        ).digest()
        if not hmac.compare_digest(expected, mac):
            return None
        if nonce <= self._highest_seen.get(node, 0):
            return None  # replay
        self._highest_seen[node] = nonce
        return payload


class AuthenticatedE2Endpoint:
    """Wraps one side of the E2 link with seal/verify processing.

    ``inner_handler`` receives envelopes exactly as the unauthenticated
    stack would (objects with a ``payload`` bytes attribute), so the agent
    and the E2 termination run unchanged behind this wrapper.
    """

    def __init__(
        self,
        node_id: str,
        key: bytes,
        inner_handler: Callable,
        keyring: Optional[dict[str, bytes]] = None,
    ) -> None:
        if len(key) < 16:
            raise E2AuthError("E2 authentication key must be at least 128 bits")
        self.authenticator = E2Authenticator(node_id=node_id, key=key)
        self.keyring = dict(keyring or {})
        self.inner_handler = inner_handler
        self.accepted = 0
        self.rejected = 0

    def trust(self, node_id: str, key: bytes) -> None:
        """Add a peer to the keyring."""
        self.keyring[node_id] = key

    # -- outbound ------------------------------------------------------------

    def seal_envelope(self, envelope) -> "_SealedEnvelope":
        return _SealedEnvelope(self.authenticator.seal(envelope.payload))

    # -- inbound --------------------------------------------------------------

    def on_e2(self, envelope) -> None:
        payload = self.authenticator.verify(envelope.payload, self.keyring)
        if payload is None:
            self.rejected += 1
            return
        self.accepted += 1
        self.inner_handler(_InnerEnvelope(payload))


class _SealedEnvelope:
    """Authenticated envelope riding the E2 InterfaceLink."""

    def __init__(self, payload: bytes) -> None:
        self.payload = payload
        self.name = "E2AP-AUTH"

    def to_wire(self) -> bytes:
        return self.payload


class _InnerEnvelope:
    """Verified inner PDU handed to the unauthenticated stack."""

    def __init__(self, payload: bytes) -> None:
        self.payload = payload
        self.name = "E2AP"

    def to_wire(self) -> bytes:
        return self.payload


class AuthenticatedE2Link:
    """Drop-in :class:`~repro.ran.links.InterfaceLink` proxy with sealing.

    Endpoint A (the E2 node / RIC agent) and endpoint B (the E2
    termination) each get an :class:`AuthenticatedE2Endpoint`; everything
    sent through this proxy is sealed with the sender's key and verified
    with the receiver's keyring. The wrapped components (RicAgent,
    E2Termination) run completely unchanged.
    """

    def __init__(
        self,
        inner,
        node_key: bytes,
        ric_key: bytes,
        node_id: str = "gnb-cu-0",
        ric_id: str = "nrt-ric-0",
    ) -> None:
        self.inner = inner
        self.name = inner.name
        self._node_id = node_id
        self._ric_id = ric_id
        self._node_key = node_key
        self._ric_key = ric_key
        self.a_endpoint: Optional[AuthenticatedE2Endpoint] = None
        self.b_endpoint: Optional[AuthenticatedE2Endpoint] = None

    def connect(self, a_handler, b_handler) -> None:
        self.a_endpoint = AuthenticatedE2Endpoint(
            self._node_id, self._node_key, a_handler,
            keyring={self._ric_id: self._ric_key},
        )
        self.b_endpoint = AuthenticatedE2Endpoint(
            self._ric_id, self._ric_key, b_handler,
            keyring={self._node_id: self._node_key},
        )
        self.inner.connect(
            a_handler=self.a_endpoint.on_e2, b_handler=self.b_endpoint.on_e2
        )

    def send_to_b(self, envelope) -> None:
        if self.a_endpoint is None:
            raise E2AuthError("link not connected")
        self.inner.send_to_b(self.a_endpoint.seal_envelope(envelope))

    def send_to_a(self, envelope) -> None:
        if self.b_endpoint is None:
            raise E2AuthError("link not connected")
        self.inner.send_to_a(self.b_endpoint.seal_envelope(envelope))

    def add_tap(self, tap) -> None:
        self.inner.add_tap(tap)

    def remove_tap(self, tap) -> None:
        self.inner.remove_tap(tap)

    @property
    def messages_carried(self) -> int:
        return self.inner.messages_carried

    @property
    def rejected_at_ric(self) -> int:
        return self.b_endpoint.rejected if self.b_endpoint else 0

    @property
    def rejected_at_node(self) -> int:
        return self.a_endpoint.rejected if self.a_endpoint else 0
