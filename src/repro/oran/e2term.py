"""E2 Termination: the RIC-side endpoint of the E2 interface.

Terminates E2AP from connected E2 nodes, tracks subscriptions, and fans
indications/acks out to xApps over the RMR router — the same role the OSC
``e2term`` + ``submgr`` services play.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.oran.e2ap import (
    ActionType,
    E2apPdu,
    E2SetupRequest,
    E2SetupResponse,
    RicControlAck,
    RicControlRequest,
    RicIndication,
    RicSubscriptionDeleteRequest,
    RicSubscriptionRequest,
    RicSubscriptionResponse,
)
from repro.oran.e2agent import _pdu_envelope, _pdu_from_envelope
from repro.oran.rmr import RIC_CONTROL_ACK, RIC_INDICATION, RIC_SUB_RESP, RmrRouter
from repro.ran.links import InterfaceLink
from repro.scale.batcher import BoundedBatcher
from repro.scale.settings import ScaleSettings
from repro.sim.entity import Entity
from repro.sim.engine import Simulator


@dataclass
class Subscription:
    """One admitted (or pending) xApp subscription."""

    ric_request_id: int
    xapp_name: str
    ran_function_id: int
    action_type: ActionType
    admitted: bool = False


class E2Termination(Entity):
    """RIC-side E2AP endpoint + subscription manager."""

    def __init__(
        self,
        sim: Simulator,
        ric_id: str,
        e2: InterfaceLink,
        rmr: RmrRouter,
        ingest: Optional[ScaleSettings] = None,
    ) -> None:
        super().__init__(sim, f"e2term.{ric_id}")
        self.ric_id = ric_id
        self.e2 = e2
        self.rmr = rmr
        self._request_ids = itertools.count(1)
        self.subscriptions: dict[int, Subscription] = {}
        self.connected_nodes: dict[str, dict] = {}
        self.indications_received = 0
        metrics = sim.obs.metrics
        self._pdu_counters = {
            kind: metrics.counter("e2term.pdus_total", labels={"type": kind})
            for kind in ("setup", "sub_resp", "indication", "control_ack", "other")
        }
        self._indication_bytes = metrics.histogram(
            "e2term.indication_bytes",
            buckets=(64, 256, 1024, 4096, 16384, 65536, 262144),
            help="encoded indication message sizes",
        )
        # Optional bounded ingest batching between this termination and the
        # xApps (repro.scale). Disabled (inline fan-out, the seed path)
        # unless the scale settings ask for it.
        self.ingest_batcher: Optional[BoundedBatcher] = None
        if ingest is not None and ingest.batching_enabled:
            self.ingest_batcher = BoundedBatcher(
                self._deliver_indications,
                capacity=ingest.ingest_capacity,
                flush_records=ingest.ingest_flush_records,
                flush_interval_s=ingest.ingest_flush_interval_s,
                drop_policy=ingest.ingest_drop_policy,
                scheduler=lambda delay, cb: sim.schedule(
                    delay, cb, name=f"{self.name}.ingest"
                ),
                clock=lambda: sim.now,
                metrics=metrics,
                name=f"{self.name}.ingest",
            )

    # -- toward the E2 node -----------------------------------------------------

    def subscribe(
        self,
        xapp_name: str,
        ran_function_id: int,
        event_trigger: bytes,
        action_type: ActionType = ActionType.REPORT,
    ) -> int:
        """Issue a subscription on behalf of an xApp; returns the request id."""
        request_id = next(self._request_ids)
        self.subscriptions[request_id] = Subscription(
            ric_request_id=request_id,
            xapp_name=xapp_name,
            ran_function_id=ran_function_id,
            action_type=action_type,
        )
        # Route this subscription's traffic to the requesting xApp.
        self.rmr.add_route(RIC_INDICATION, xapp_name, sub_id=request_id)
        self.rmr.add_route(RIC_SUB_RESP, xapp_name, sub_id=request_id)
        self.e2.send_to_a(
            _pdu_envelope(
                RicSubscriptionRequest(
                    ric_request_id=request_id,
                    ran_function_id=ran_function_id,
                    event_trigger=event_trigger,
                    action_type=action_type,
                )
            )
        )
        return request_id

    def delete_subscription(self, ric_request_id: int) -> bool:
        """Tear down a subscription (removes installed node-side policies)."""
        subscription = self.subscriptions.pop(ric_request_id, None)
        if subscription is None:
            return False
        self.rmr.remove_route(RIC_INDICATION, subscription.xapp_name, sub_id=ric_request_id)
        self.e2.send_to_a(
            _pdu_envelope(
                RicSubscriptionDeleteRequest(
                    ric_request_id=ric_request_id,
                    ran_function_id=subscription.ran_function_id,
                )
            )
        )
        return True

    def send_control(
        self,
        xapp_name: str,
        ran_function_id: int,
        control_header: bytes,
        control_message: bytes,
    ) -> int:
        """Issue a control request on behalf of an xApp."""
        request_id = next(self._request_ids)
        self.rmr.add_route(RIC_CONTROL_ACK, xapp_name, sub_id=request_id)
        self.e2.send_to_a(
            _pdu_envelope(
                RicControlRequest(
                    ric_request_id=request_id,
                    ran_function_id=ran_function_id,
                    control_header=control_header,
                    control_message=control_message,
                )
            )
        )
        return request_id

    # -- from the E2 node ------------------------------------------------------------

    def on_e2(self, envelope) -> None:
        pdu = _pdu_from_envelope(envelope)
        if isinstance(pdu, E2SetupRequest):
            self._pdu_counters["setup"].inc()
            self.connected_nodes[pdu.e2_node_id] = pdu.ran_functions
            self.e2.send_to_a(
                _pdu_envelope(
                    E2SetupResponse(
                        ric_id=self.ric_id,
                        accepted_functions=sorted(pdu.ran_functions),
                    )
                )
            )
        elif isinstance(pdu, RicSubscriptionResponse):
            self._pdu_counters["sub_resp"].inc()
            subscription = self.subscriptions.get(pdu.ric_request_id)
            if subscription is not None:
                subscription.admitted = pdu.admitted
            self.rmr.send(RIC_SUB_RESP, pdu.ric_request_id, pdu)
        elif isinstance(pdu, RicIndication):
            self.indications_received += 1
            self._pdu_counters["indication"].inc()
            self._indication_bytes.observe(len(pdu.indication_message))
            if self.ingest_batcher is not None:
                self.ingest_batcher.offer(pdu)
            else:
                self.rmr.send(RIC_INDICATION, pdu.ric_request_id, pdu)
        elif isinstance(pdu, RicControlAck):
            self._pdu_counters["control_ack"].inc()
            self.rmr.send(RIC_CONTROL_ACK, pdu.ric_request_id, pdu)
        else:
            self._pdu_counters["other"].inc()
            self.log(f"unhandled E2AP PDU {pdu.pdu_name}")

    def _deliver_indications(self, batch: list) -> None:
        """Batched RMR fan-out (the ingest batcher's flush target)."""
        for pdu in batch:
            self.rmr.send(RIC_INDICATION, pdu.ric_request_id, pdu)
