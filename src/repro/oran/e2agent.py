"""E2 RIC agent embedded in the gNB CU (paper §3.1 / §4 testbed).

The paper extends the OAI CU with "an E2 RIC agent that extracts security
telemetry and handles communication with the nRT-RIC's E2 interface". This
agent does the same three jobs:

1. **Extract** — taps the F1AP/NGAP links with a live
   :class:`~repro.telemetry.collector.MobiFlowCollector`;
2. **Report** — on an admitted MobiFlow subscription, batches the records
   collected each report period into E2SM-KPM indications;
3. **Control** — executes RIC control actions (release UE, blocklist TMSI)
   against the CU and acknowledges the outcome.
"""

from __future__ import annotations

from typing import Optional

from repro.oran.e2ap import (
    ActionType,
    E2apPdu,
    E2SetupRequest,
    RicControlAck,
    RicControlRequest,
    RicIndication,
    RicSubscriptionDeleteRequest,
    RicSubscriptionRequest,
    RicSubscriptionResponse,
)
from repro.oran.e2sm import E2smError
from repro.oran.e2sm_kpm import (
    ACTION_BLOCKLIST_TMSI,
    AccessRatePolicy,
    ACTION_CLEAR_RATE_LIMIT,
    ACTION_RATE_LIMIT_ACCESS,
    ACTION_RELEASE_UE,
    ACTION_UNBLOCK_TMSI,
    MobiFlowKpmModel,
    MobiFlowReportStyle,
)
from repro.genfast.settings import GenfastSettings
from repro.ran.links import InterfaceLink
from repro.ran.network import FiveGNetwork
from repro.sim.entity import Entity
from repro.telemetry.batch import MobiFlowBatch
from repro.telemetry.collector import MobiFlowCollector
from repro.telemetry.mobiflow import MobiFlowRecord


class RicAgent(Entity):
    """The E2 node side of the control plane, attached to a live network."""

    def __init__(
        self,
        net: FiveGNetwork,
        e2: InterfaceLink,
        node_id: str = "gnb-cu-0",
        genfast: Optional[GenfastSettings] = None,
    ) -> None:
        super().__init__(net.sim, f"e2agent.{node_id}")
        self.net = net
        self.e2 = e2
        self.node_id = node_id
        self.genfast = genfast or GenfastSettings()
        self.collector = MobiFlowCollector(metrics=net.sim.obs.metrics)
        self._buffer: list[MobiFlowRecord] = []
        self._subscription: Optional[tuple[int, MobiFlowReportStyle]] = None
        # Installed fast-path policies: ric_request_id -> AccessRatePolicy.
        self.policies: dict[int, AccessRatePolicy] = {}
        self._sequence = 0
        self.indications_sent = 0
        self.controls_executed = 0
        metrics = net.sim.obs.metrics
        self._indications_counter = metrics.counter(
            "e2agent.indications_total", help="E2SM-KPM indications sent"
        )
        self._batch_records = metrics.histogram(
            "e2agent.batch_records",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            help="MobiFlow records per indication",
        )
        self._report_queue_latency = metrics.histogram(
            "e2agent.report_queue_latency_s",
            help="capture -> indication send, per record (report batching)",
        )
        self._controls_counters: dict[str, object] = {}
        # Tap the data-plane interfaces exactly where the paper instruments.
        net.f1.add_tap(self.collector.on_capture)
        net.ng.add_tap(self.collector.on_capture)
        self.collector.subscribe(self._buffer.append)

    # -- E2 connection ----------------------------------------------------------

    def start(self) -> None:
        """Announce the extended KPM function to the RIC (E2 Setup)."""
        definition = MobiFlowKpmModel.definition()
        self.e2.send_to_b(
            _pdu_envelope(
                E2SetupRequest(
                    e2_node_id=self.node_id,
                    ran_functions={
                        str(definition.ran_function_id): definition.to_value()
                    },
                )
            )
        )

    def on_e2(self, envelope) -> None:
        """Handle an E2AP PDU arriving from the RIC."""
        pdu = _pdu_from_envelope(envelope)
        if isinstance(pdu, RicSubscriptionRequest):
            self._on_subscription(pdu)
        elif isinstance(pdu, RicSubscriptionDeleteRequest):
            self._on_subscription_delete(pdu)
        elif isinstance(pdu, RicControlRequest):
            self._on_control(pdu)
        # Setup responses and acks need no action on the agent side.

    # -- reporting ------------------------------------------------------------------

    def _on_subscription(self, request: RicSubscriptionRequest) -> None:
        admitted = False
        if request.ran_function_id == MobiFlowKpmModel.RAN_FUNCTION_ID:
            if request.action_type is ActionType.REPORT:
                trigger = MobiFlowKpmModel.decode_event_trigger(request.event_trigger)
                style = MobiFlowReportStyle.from_trigger(trigger)
                first_subscription = self._subscription is None
                self._subscription = (request.ric_request_id, style)
                if first_subscription:
                    self.schedule(style.report_period_s, self._report_tick)
                admitted = True
            elif request.action_type is ActionType.POLICY:
                admitted = self._install_policy(request)
        self.e2.send_to_b(
            _pdu_envelope(
                RicSubscriptionResponse(
                    ric_request_id=request.ric_request_id,
                    ran_function_id=request.ran_function_id,
                    admitted=admitted,
                )
            )
        )

    # -- policy (fast-path rules installed at the node, §2.1) ------------------------

    def _install_policy(self, request: RicSubscriptionRequest) -> bool:
        try:
            trigger = MobiFlowKpmModel.decode_event_trigger(request.event_trigger)
            policy = AccessRatePolicy.from_trigger(trigger)
            self.net.du.set_rate_limit(policy.max_setups, policy.window_s)
        except (E2smError, ValueError, KeyError):
            return False
        self.policies[request.ric_request_id] = policy
        return True

    def _on_subscription_delete(self, request: RicSubscriptionDeleteRequest) -> None:
        if request.ric_request_id in self.policies:
            self.policies.pop(request.ric_request_id)
            if not self.policies:
                self.net.du.clear_rate_limit()
        elif self._subscription and self._subscription[0] == request.ric_request_id:
            self._subscription = None  # stops the report loop at next tick

    def _report_tick(self) -> None:
        if self._subscription is None:
            return
        request_id, style = self._subscription
        if self._buffer:
            limit = style.max_records_per_indication
            take = limit if limit and len(self._buffer) > limit else len(self._buffer)
            # Mutate in place: the collector subscription holds a reference
            # to this exact list.
            batch = self._buffer[:take]
            del self._buffer[:take]
            now = self.now
            for record in batch:
                self._report_queue_latency.observe(now - record.timestamp)
            self._batch_records.observe(len(batch))
            if self.genfast.columnar_batches:
                # Columnar fast lane: one struct-of-arrays indication; the
                # xApp decodes it back to the identical record stream.
                payload: object = MobiFlowBatch.from_records(batch)
            else:
                payload = batch
            header, message = MobiFlowKpmModel.encode_indication(payload)
            self._sequence += 1
            self.indications_sent += 1
            self._indications_counter.inc()
            self.e2.send_to_b(
                _pdu_envelope(
                    RicIndication(
                        ric_request_id=request_id,
                        ran_function_id=MobiFlowKpmModel.RAN_FUNCTION_ID,
                        sequence_number=self._sequence,
                        indication_header=header,
                        indication_message=message,
                    )
                )
            )
        self.schedule(style.report_period_s, self._report_tick)

    # -- control ------------------------------------------------------------------------

    def _on_control(self, request: RicControlRequest) -> None:
        action, params = MobiFlowKpmModel.decode_control(
            request.control_header, request.control_message
        )
        success, outcome = self._execute(action, params)
        if success:
            self.controls_executed += 1
            counter = self._controls_counters.get(action)
            if counter is None:
                counter = self._controls_counters[action] = self.sim.obs.metrics.counter(
                    "e2agent.controls_executed_total", labels={"action": action}
                )
            counter.inc()
            self.log(f"control executed: {outcome}", action=action)
        if request.ack_requested:
            self.e2.send_to_b(
                _pdu_envelope(
                    RicControlAck(
                        ric_request_id=request.ric_request_id,
                        ran_function_id=request.ran_function_id,
                        success=success,
                        outcome=outcome,
                    )
                )
            )

    def _execute(self, action: str, params: dict) -> tuple[bool, str]:
        cu = self.net.cu
        if action == ACTION_RELEASE_UE:
            rnti = int(params["rnti"])
            if cu.release_rnti(rnti, cause="ric-control"):
                return True, f"released rnti 0x{rnti:04x}"
            return False, f"no active context for rnti 0x{rnti:04x}"
        if action == ACTION_BLOCKLIST_TMSI:
            tmsi = int(params["tmsi"])
            cu.tmsi_blocklist.add(tmsi)
            return True, f"blocklisted tmsi 0x{tmsi:08x}"
        if action == ACTION_UNBLOCK_TMSI:
            tmsi = int(params["tmsi"])
            cu.tmsi_blocklist.discard(tmsi)
            return True, f"unblocked tmsi 0x{tmsi:08x}"
        if action == ACTION_RATE_LIMIT_ACCESS:
            max_setups = int(params["max_setups"])
            window_s = float(params["window_s"])
            try:
                self.net.du.set_rate_limit(max_setups, window_s)
            except ValueError as exc:
                return False, str(exc)
            return True, f"rate limit {max_setups}/{window_s:g}s"
        if action == ACTION_CLEAR_RATE_LIMIT:
            self.net.du.clear_rate_limit()
            return True, "rate limit cleared"
        return False, f"unknown action {action!r}"


class _E2Envelope:
    """Adapter so E2AP PDUs can ride an :class:`InterfaceLink` (which taps
    expect objects with ``to_wire``). Carries the PDU as bytes, exercising
    the full encode/decode path per hop."""

    def __init__(self, payload: bytes) -> None:
        self.payload = payload
        self.name = "E2AP"

    def to_wire(self) -> bytes:
        return self.payload


def _pdu_envelope(pdu: E2apPdu) -> _E2Envelope:
    return _E2Envelope(pdu.to_wire())


def _pdu_from_envelope(envelope) -> E2apPdu:
    return E2apPdu.from_wire(envelope.payload)
