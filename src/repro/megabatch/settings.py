"""Configuration knobs for cross-session megabatch scoring (``repro.megabatch``).

Kept dependency-free (like :mod:`repro.hotpath.settings`) so every layer can
import it without cycles. **Every default preserves the seed's scoring
behaviour bit-for-bit**: per-session scoring calls, float64 arithmetic, no
session eviction.

The independent switches:

- ``enabled`` — per-tick megabatch gathering: every touched session's
  pending window is gathered into one ``[n_sessions, window * dim]``
  matrix and the detector runs **one** fused call per RIC tick across all
  UEs, instead of one call (or one pool submission) per session. In
  float64 the batched rows score bit-identically to the per-session calls
  (each output element is an independent dot product), so anomaly events
  are bit-identical to the seed path — enforced per attack scenario by
  tests/test_megabatch.py.
- ``quantized`` — the int8/float16 quantized kernel tier (LSTM detector
  only; ignored with a log line under the autoencoder). Weights and
  inputs are quantized to int8 (per-column / per-tensor scales from a
  per-capture calibration pass) and carried exactly inside float32 BLAS
  GEMMs; per-session hidden/cell state is stored in ``state_dtype`` and
  advanced by **one** fused batched LSTM step per tick across all touched
  sessions (session-context semantics, like
  :mod:`repro.hotpath.incremental`). Scores differ from the float64 path;
  the accuracy contract is at the detection-metric level (see
  ``quantized_metric_tol`` and docs/PERFORMANCE.md).
- eviction (``evict_on_release`` / ``evict_idle_s``) — bounded per-session
  state: drop a session's record indices, arena rows, carried scorer
  state and alert bookkeeping when the RAN releases the session or after
  an idle horizon. Off by default because a re-appearing session restarts
  its window history (a behaviour change, not a bit-identical one).
"""

from __future__ import annotations

from dataclasses import dataclass

_STATE_DTYPES = ("float16", "float32")
_CALIBRATIONS = ("minmax", "percentile")


@dataclass
class MegabatchSettings:
    """Knobs of the ``repro.megabatch`` subsystem (see module docstring)."""

    # One fused detector call per tick across every touched session.
    enabled: bool = False

    # Int8-weight/int8-input quantized batched LSTM tier with carried
    # per-session state (implies megabatch-style per-tick scoring for the
    # LSTM detector; the autoencoder falls back to the gather path).
    quantized: bool = False
    # Storage precision of the carried hidden/cell state arenas. float16
    # halves state memory at fleet scale; float32 is the exactness-leaning
    # option (the batched step itself always computes in float32).
    state_dtype: str = "float16"
    # Per-capture input calibration over the training windows: "minmax"
    # uses the observed absolute maximum; "percentile" clips outliers at
    # ``calibration_percentile`` of the absolute-value distribution.
    calibration: str = "minmax"
    calibration_percentile: float = 99.9

    # Session-state eviction. ``evict_on_release``: an RRCRelease record
    # finishes the session — score its final window immediately (instead
    # of waiting out the maturity timer) and drop its state at the end of
    # the tick. ``evict_idle_s`` > 0: a periodic sweep (every
    # ``evict_sweep_s``) drops sessions untouched for that horizon.
    evict_on_release: bool = False
    evict_idle_s: float = 0.0
    evict_sweep_s: float = 5.0

    # Documented accuracy contract of the quantized tier: Table-2-style
    # detection metrics (accuracy/precision/recall/F1 at the percentile
    # operating point) stay within this absolute tolerance of the float64
    # path, verified per attack scenario by tests/test_megabatch.py.
    quantized_metric_tol: float = 0.05

    def __post_init__(self) -> None:
        if self.state_dtype not in _STATE_DTYPES:
            raise ValueError(
                f"state_dtype must be one of {_STATE_DTYPES}, got {self.state_dtype!r}"
            )
        if self.calibration not in _CALIBRATIONS:
            raise ValueError(
                f"calibration must be one of {_CALIBRATIONS}, got {self.calibration!r}"
            )
        if not 0.0 < self.calibration_percentile <= 100.0:
            raise ValueError(
                f"calibration_percentile must be in (0, 100], "
                f"got {self.calibration_percentile}"
            )
        if self.evict_idle_s < 0:
            raise ValueError(f"evict_idle_s must be >= 0, got {self.evict_idle_s}")
        if self.evict_sweep_s <= 0:
            raise ValueError(f"evict_sweep_s must be > 0, got {self.evict_sweep_s}")
        if self.quantized_metric_tol <= 0:
            raise ValueError(
                f"quantized_metric_tol must be > 0, got {self.quantized_metric_tol}"
            )

    @property
    def batching_enabled(self) -> bool:
        """Per-tick batched scoring is on (gathered or quantized)."""
        return self.enabled or self.quantized

    @property
    def eviction_enabled(self) -> bool:
        return self.evict_on_release or self.evict_idle_s > 0

    @property
    def any_enabled(self) -> bool:
        return self.batching_enabled or self.eviction_enabled
