"""Cross-session megabatch scoring: one fused detector call per RIC tick.

The seed loop scores each touched session with its own detector call (or
pool submission). ``repro.megabatch`` gathers every touched session's
pending window into one ``[n_sessions, window * dim]`` matrix per tick and
runs a single fused GEMM across all UEs, plus an int8/float16 quantized
LSTM tier with carried per-session state and a per-capture calibration
pass. See :mod:`repro.megabatch.settings` for the knobs and the
bit-identity / accuracy contracts, and docs/PERFORMANCE.md for numbers.
"""

from repro.megabatch.quantized import (
    QuantCalibration,
    QuantizedLstmEngine,
    calibrate_windows,
)
from repro.megabatch.settings import MegabatchSettings

__all__ = [
    "MegabatchSettings",
    "QuantCalibration",
    "QuantizedLstmEngine",
    "calibrate_windows",
]
