"""Int8/float16 quantized LSTM tier: one fused batched step per tick.

NumPy has no fast native int8 matmul (``int8 @ int8`` promotes through
slow integer kernels; float16 GEMMs are orders of magnitude slower than
sgemm), so this tier carries int8 arithmetic **inside float32 BLAS**:
quantized weights and inputs are small integers stored in float32 arrays.
Every product is at most ``127 * 127`` and every GEMM accumulates at most
``max(input_dim, hidden_dim)`` of them, far below ``2**24`` — so the
integer part of each dot product is exact in float32; quantization
rounding is the *only* error source of the input-side term.

Quantization scheme:

- **weights**: per-column symmetric int8 — each GEMM output column is the
  dot product of one weight column alone, so a per-column scale factors
  out of the sum exactly;
- **inputs**: per-tensor symmetric int8, scale from a per-capture
  calibration pass over the training windows (min/max or percentile of
  the absolute-value distribution — :func:`calibrate_windows`);
- **carried state**: the per-session hidden/cell arenas are stored in
  ``state_dtype`` (float16 by default, halving state memory at fleet
  scale) and dequantized to float32 for the batched step. The recurrent
  and head GEMMs multiply float state against int8 weights in sgemm.

The speed of the tier comes from two compounding changes versus the
compiled float32 window kernels: carried state turns O(window) full-window
gate steps per score into **one** step, and the whole fleet's step runs as
a single ``[n_sessions, *]`` GEMM pair per tick (:meth:`megastep`).

Scores follow the *session-context* semantics of
:class:`repro.hotpath.incremental.IncrementalLstmScorer`: a record's
prediction context is its entire session prefix, ``error[0] = 0``, and the
window score is the max over the last ``window`` per-record errors (kept
in a per-session ring). Scores are **not** bit-identical to float64 — the
documented accuracy contract is at the detection-metric level
(:class:`~repro.megabatch.settings.MegabatchSettings.quantized_metric_tol`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.hotpath.compiled import _sigmoid_inplace
from repro.megabatch.settings import MegabatchSettings

# Symmetric int8 range used for every quantized tensor.
_QMAX = 127.0


@dataclass(frozen=True)
class QuantCalibration:
    """Per-capture input-quantization scales (from the training windows)."""

    # Per-tensor input scale: real_value ~= int8_value * input_scale.
    input_scale: float
    method: str
    observed_abs_max: float

    def to_dict(self) -> dict:
        return {
            "input_scale": self.input_scale,
            "method": self.method,
            "observed_abs_max": self.observed_abs_max,
        }


def calibrate_windows(
    windows: np.ndarray, settings: Optional[MegabatchSettings] = None
) -> QuantCalibration:
    """Calibration pass: pick the int8 input scale from training windows.

    ``minmax`` maps the observed absolute maximum to 127; ``percentile``
    clips the top ``(100 - calibration_percentile)%`` of absolute values
    (robust to rare feature spikes that would otherwise waste int8 range).
    """
    settings = settings or MegabatchSettings()
    flat = np.abs(np.asarray(windows, dtype=np.float64)).ravel()
    observed = float(flat.max()) if flat.size else 0.0
    if settings.calibration == "minmax" or not flat.size:
        bound = observed
    else:
        bound = float(np.percentile(flat, settings.calibration_percentile))
    bound = max(bound, 1e-12)
    return QuantCalibration(
        input_scale=bound / _QMAX,
        method=settings.calibration,
        observed_abs_max=observed,
    )


def _quantize_per_column(weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-column int8 quantization, kept in float32 arrays.

    Returns ``(wq, scales)`` with ``wq[:, j] * scales[j] ~= weights[:, j]``
    and ``|wq| <= 127`` exactly representable in float32.
    """
    weights = np.asarray(weights, dtype=np.float64)
    scales = np.abs(weights).max(axis=0) / _QMAX
    scales = np.maximum(scales, 1e-12)
    wq = np.rint(weights / scales)
    np.clip(wq, -_QMAX, _QMAX, out=wq)
    return wq.astype(np.float32), scales.astype(np.float32)


class QuantizedLstmEngine:
    """Carried-state batched scorer over int8-quantized LSTM weights."""

    def __init__(
        self,
        detector,
        calibration: QuantCalibration,
        settings: Optional[MegabatchSettings] = None,
        metrics=None,
        initial_sessions: int = 64,
    ) -> None:
        from repro.ml.detector import LstmDetector

        if not isinstance(detector, LstmDetector):
            raise TypeError(
                f"quantized tier needs an LstmDetector, got {type(detector).__name__}"
            )
        self.settings = settings or MegabatchSettings(quantized=True)
        self.calibration = calibration
        self.window = detector.window
        model = detector.model
        self.input_dim = model.input_dim
        self.hidden_dim = model.hidden_dim
        hd = self.hidden_dim
        # Same [i, f, g, o] -> [i, f, o, g] column permutation as the
        # compiled kernels: the three sigmoid gates become one contiguous
        # block (one fused sigmoid call). Column permutation commutes with
        # per-column quantization.
        perm = np.concatenate(
            [np.arange(0, 2 * hd), np.arange(3 * hd, 4 * hd), np.arange(2 * hd, 3 * hd)]
        )
        self._wxq, wx_scales = _quantize_per_column(model.Wx.value[:, perm])
        self._whq, wh_scales = _quantize_per_column(model.Wh.value[:, perm])
        self._b = np.ascontiguousarray(model.b.value[perm], dtype=np.float32)
        self._headq, head_scales = _quantize_per_column(model.head.W.value)
        self._head_b = np.ascontiguousarray(model.head.b.value, dtype=np.float32)
        # Composite column scales applied after each GEMM (row vectors so
        # they broadcast over the batch).
        sx = np.float32(calibration.input_scale)
        self._input_scale = sx
        self._x_colscale = (wx_scales * sx)[None, :]
        self._h_colscale = wh_scales[None, :]
        self._head_colscale = head_scales[None, :]
        # Per-session state arenas: slot-indexed dense arrays so one tick's
        # sessions gather/scatter with two fancy-index copies.
        self._state_dtype = np.dtype(self.settings.state_dtype)
        cap = max(initial_sessions, 1)
        self._h = np.zeros((cap, hd), dtype=self._state_dtype)
        self._c = np.zeros((cap, hd), dtype=self._state_dtype)
        self._err_ring = np.zeros((cap, self.window), dtype=np.float32)
        self._counts = np.zeros(cap, dtype=np.int64)
        self._slots: Dict[int, int] = {}
        self._free: list[int] = []
        self.steps = 0
        self._steps_counter = None
        if metrics is not None:
            self._steps_counter = metrics.counter(
                "megabatch.quantized_steps_total",
                help="records advanced through the fused quantized step",
            )
            metrics.gauge(
                "megabatch.quantized_sessions",
                fn=lambda: float(len(self._slots)),
                help="sessions with carried quantized LSTM state",
            )

    # -- session state management -------------------------------------------------

    def __contains__(self, session_id: int) -> bool:
        return session_id in self._slots

    @property
    def sessions(self) -> int:
        return len(self._slots)

    def session_count(self, session_id: int) -> int:
        slot = self._slots.get(session_id)
        return int(self._counts[slot]) if slot is not None else 0

    def release(self, session_id: int) -> bool:
        """Drop one session's carried state; its slot is recycled."""
        slot = self._slots.pop(session_id, None)
        if slot is None:
            return False
        self._h[slot] = 0
        self._c[slot] = 0
        self._err_ring[slot] = 0.0
        self._counts[slot] = 0
        self._free.append(slot)
        return True

    def _slot(self, session_id: int) -> int:
        slot = self._slots.get(session_id)
        if slot is not None:
            return slot
        if self._free:
            slot = self._free.pop()
        else:
            slot = len(self._slots)
            if slot >= self._h.shape[0]:
                self._grow(slot + 1)
        self._slots[session_id] = slot
        return slot

    def _grow(self, needed: int) -> None:
        cap = max(needed, self._h.shape[0] * 2)
        for name in ("_h", "_c", "_err_ring"):
            old = getattr(self, name)
            grown = np.zeros((cap,) + old.shape[1:], dtype=old.dtype)
            grown[: old.shape[0]] = old
            setattr(self, name, grown)
        counts = np.zeros(cap, dtype=np.int64)
        counts[: self._counts.shape[0]] = self._counts
        self._counts = counts

    # -- the fused batched step ---------------------------------------------------

    def megastep(self, session_ids, rows: np.ndarray) -> np.ndarray:
        """Ingest one new record for each listed session — one GEMM pair.

        ``session_ids`` must be unique within a call (a session with two
        records in one tick takes two waves — the caller groups records).
        Returns each session's updated window score (session-context: max
        over its last ``window`` per-record errors).
        """
        idx = np.fromiter(
            (self._slot(sid) for sid in session_ids), dtype=np.int64, count=len(session_ids)
        )
        n = idx.shape[0]
        if n == 0:
            return np.zeros(0)
        counter = self._steps_counter
        if counter is not None:
            counter.value += n
        self.steps += n
        hd = self.hidden_dim
        x = np.ascontiguousarray(rows, dtype=np.float32)
        h = self._h[idx].astype(np.float32, copy=False)
        c = self._c[idx].astype(np.float32, copy=False)
        counts = self._counts[idx]
        # Next-entry prediction error of the arriving record, from the
        # state carried over the session prefix. A session's first record
        # is unpredictable: error 0 (the seed convention).
        pred = np.dot(h, self._headq)
        pred *= self._head_colscale
        pred += self._head_b
        pred -= x
        np.multiply(pred, pred, out=pred)
        errors = np.mean(pred, axis=1)
        errors[counts == 0] = 0.0
        # Quantize the inputs (per-tensor scale), then the fused gate step:
        # both GEMMs in float32, int8 values exact, column scales applied
        # after the accumulate.
        xq = x / self._input_scale
        np.rint(xq, out=xq)
        np.clip(xq, -_QMAX, _QMAX, out=xq)
        z = np.dot(xq, self._wxq)
        z *= self._x_colscale
        zh = np.dot(h, self._whq)
        zh *= self._h_colscale
        z += zh
        z += self._b
        # Permuted layout: [i | f | o] sigmoid block, then g.
        i = z[:, :hd]
        f = z[:, hd : 2 * hd]
        o = z[:, 2 * hd : 3 * hd]
        g = z[:, 3 * hd :]
        _sigmoid_inplace(z[:, : 3 * hd])
        np.tanh(g, out=g)
        np.multiply(f, c, out=c)
        c += i * g
        tanh_c = np.tanh(c)
        np.multiply(o, tanh_c, out=h)
        # Scatter state back (casts into the storage dtype) and record the
        # error in each session's ring.
        self._h[idx] = h
        self._c[idx] = c
        self._err_ring[idx, counts % self.window] = errors
        self._counts[idx] = counts + 1
        return self.window_scores_for(session_ids)

    def warm_up(self, session_id: int, rows) -> None:
        """Replay pre-existing session rows (deploy-time catch-up)."""
        for row in np.asarray(rows, dtype=np.float32):
            self.megastep([session_id], row[None, :])

    # -- scoring ------------------------------------------------------------------

    def window_score(self, session_id: int) -> float:
        """One session's current window score (ring max)."""
        slot = self._slots.get(session_id)
        if slot is None or self._counts[slot] == 0:
            raise KeyError(f"no records pushed for session {session_id}")
        return float(self._err_ring[slot].max())

    def window_scores_for(self, session_ids) -> np.ndarray:
        """Vectorized window scores for sessions that already hold state.

        Ring entries never written stay 0.0, which matches the seed
        convention exactly: errors are non-negative and a short session's
        score is the max over its errors including ``error[0] = 0``.
        """
        idx = np.fromiter(
            (self._slots[sid] for sid in session_ids),
            dtype=np.int64,
            count=len(session_ids),
        )
        if idx.shape[0] == 0:
            return np.zeros(0)
        return self._err_ring[idx].max(axis=1).astype(np.float64)

    # -- offline scoring (threshold fitting + accuracy-contract tests) ------------

    def record_errors_for_rows(self, rows: np.ndarray) -> np.ndarray:
        """Per-record quantized session-context errors, fresh state.

        The quantized analogue of
        :meth:`repro.hotpath.incremental.IncrementalLstmScorer.replay_errors`;
        does not touch the live session arenas.
        """
        seq = np.asarray(rows, dtype=np.float32)
        length = seq.shape[0]
        errors = np.zeros(length)
        if length < 2:
            return errors
        hd = self.hidden_dim
        h = np.zeros((1, hd), dtype=self._state_dtype)
        c = np.zeros((1, hd), dtype=self._state_dtype)
        for t in range(length - 1):
            h32 = h.astype(np.float32, copy=False)
            c32 = c.astype(np.float32, copy=False)
            x = seq[t : t + 1]
            xq = np.clip(np.rint(x / self._input_scale), -_QMAX, _QMAX)
            z = np.dot(xq, self._wxq) * self._x_colscale
            z += np.dot(h32, self._whq) * self._h_colscale
            z += self._b
            i = z[:, :hd]
            f = z[:, hd : 2 * hd]
            o = z[:, 2 * hd : 3 * hd]
            g = z[:, 3 * hd :]
            _sigmoid_inplace(z[:, : 3 * hd])
            np.tanh(g, out=g)
            c32 = f * c32 + i * g
            h32 = o * np.tanh(c32)
            h = h32.astype(self._state_dtype)
            c = c32.astype(self._state_dtype)
            pred = np.dot(h.astype(np.float32, copy=False), self._headq)
            pred *= self._head_colscale
            pred += self._head_b
            diff = pred - seq[t + 1 : t + 2]
            errors[t + 1] = float(np.mean(diff * diff))
        return errors

    def window_scores(self, windows: np.ndarray, window: int) -> np.ndarray:
        """Quantized window-mode scores (fresh state per window).

        Mirrors ``LstmDetector.scores`` — used to fit the quantized
        operating threshold on the training windows at ``fit`` time, so
        the live percentile operating point refers to quantized score
        space rather than float64 score space.
        """
        windows = np.asarray(windows)
        n = windows.shape[0]
        if n == 0:
            return np.zeros(0)
        steps = window - 1
        hd = self.hidden_dim
        shaped = windows.reshape(n, window, self.input_dim).astype(np.float32)
        h = np.zeros((n, hd), dtype=np.float32)
        c = np.zeros((n, hd), dtype=np.float32)
        errs = np.empty((n, steps), dtype=np.float32)
        for t in range(steps):
            x = shaped[:, t, :]
            xq = np.clip(np.rint(x / self._input_scale), -_QMAX, _QMAX)
            z = np.dot(xq, self._wxq) * self._x_colscale
            z += np.dot(h, self._whq) * self._h_colscale
            z += self._b
            i = z[:, :hd]
            f = z[:, hd : 2 * hd]
            o = z[:, 2 * hd : 3 * hd]
            g = z[:, 3 * hd :]
            _sigmoid_inplace(z[:, : 3 * hd])
            np.tanh(g, out=g)
            np.multiply(f, c, out=c)
            c += i * g
            h = o * np.tanh(c)
            if self._state_dtype != np.float32:
                # Round-trip through the storage dtype so window-mode
                # scores see the same state precision as the live path.
                h = h.astype(self._state_dtype).astype(np.float32)
                c = c.astype(self._state_dtype).astype(np.float32)
            pred = np.dot(h, self._headq)
            pred *= self._head_colscale
            pred += self._head_b
            diff = pred - shaped[:, t + 1, :]
            errs[:, t] = np.mean(diff * diff, axis=1)
        return errs.max(axis=1).astype(np.float64)

    def session_window_scores(self, windowed) -> np.ndarray:
        """Quantized session-context scores for a sessionized dataset.

        The quantized analogue of
        :meth:`repro.ml.detector.LstmDetector.session_window_scores`, for
        the Table-2-style accuracy-contract evaluation.
        """
        from repro.ml.detector import merge_session_groups

        groups = merge_session_groups(windowed.window_records)
        per_record = np.asarray(windowed.per_record, dtype=np.float64)
        record_errors = np.zeros(per_record.shape[0])
        for indices in groups:
            indices = list(indices)
            if len(indices) < 2:
                continue
            record_errors[indices] = self.record_errors_for_rows(per_record[indices])
        return np.array(
            [
                record_errors[list(indices)].max() if indices else 0.0
                for indices in windowed.window_records
            ]
        )

    def stats(self) -> dict:
        return {
            "sessions": self.sessions,
            "steps": self.steps,
            "state_dtype": str(self._state_dtype),
            "input_scale": float(self._input_scale),
            "calibration": self.calibration.method,
        }
