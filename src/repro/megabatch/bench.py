"""Megabatch benchmark: per-tick scoring throughput at fleet scale.

One simulated RIC tick touches every one of ``sessions`` concurrent UEs;
the measured quantity is the **scoring phase** of that tick (the part the
megabatch restructuring changes), in sessions scored per second:

- **pooled** — the baseline ``repro.scale`` path at its fleet
  configuration (the scale bench's 4 session-sharded workers, 64-window
  flush batches): one ``pool.submit`` per session and per-window
  callbacks running the seed's score handling (histogram observe,
  counter bump, threshold compare) on the float64 reference scorer;
- **megabatch float64** — gather every session's arena window view into
  one ``[n, window*dim]`` matrix, then score it through seed-shaped
  ``[1, window*dim]`` calls (BLAS accumulates differently per batch
  height, so this is the bit-identical tier — re-verified against the
  seed's own per-session assembly every run);
- **megabatch float32** — the gathered matrix through one fused
  ``repro.hotpath`` compiled float32 GEMM per tick (the headline tier);
- **quantized** (LSTM only) — carried int8/float16 state advanced by one
  fused batched step per tick plus the ring-max score read.

Every tier's tick includes its score handling — per-window callbacks on
the pooled path, one ``observe_many`` + vectorized threshold sweep on the
megabatch paths — because that Python-per-window bookkeeping is exactly
what the per-tick restructuring removes.

:func:`violations` gates a result against the hard floors (megabatch
float32 ≥ 3x pooled; quantized ≥ 1.5x megabatch float32) and a committed
baseline (``BENCH_megabatch.json``), so CI fails on regressions.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.hotpath.arena import SessionWindowArena
from repro.hotpath.compiled import compile_detector
from repro.megabatch.quantized import QuantizedLstmEngine, calibrate_windows
from repro.megabatch.settings import MegabatchSettings
from repro.scale.pool import InferencePool

# Hard floors from the acceptance gates.
MEGABATCH_SPEEDUP_MIN = 3.0  # megabatch f32 vs pooled per-session, >= 1k sessions
QUANTIZED_SPEEDUP_MIN = 1.5  # quantized tier vs megabatch f32 (LSTM)
# A fresh run may regress this far below the committed baseline's measured
# ratio before we call it a regression (shared-runner noise allowance).
BASELINE_SLACK = 0.5


@dataclass
class MegabatchBenchConfig:
    sessions: int = 1024
    window: int = 6
    feature_dim: int = 71
    lstm_hidden_dim: int = 64
    ae_hidden_dim: int = 128
    ae_latent_dim: int = 24
    seed: int = 7
    # Pool shape of the baseline tier (the scale bench's fleet point:
    # session-sharded workers, 64-window flush batches).
    pool_batch_windows: int = 64
    pool_workers: int = 4
    ticks: int = 6  # timed ticks per measurement
    repeats: int = 3  # best-of repeats for every timing loop
    # Sessions double-checked for f64 batch-vs-single bit-identity.
    equality_sessions: int = 64

    @classmethod
    def quick(cls) -> "MegabatchBenchConfig":
        # The floors are defined at >= 1k concurrent sessions, so quick
        # mode keeps the fleet size and trims repetitions instead.
        return cls(ticks=2, repeats=2, equality_sessions=16)


@dataclass
class MegabatchBenchResult:
    tiers: dict = field(default_factory=dict)
    equality: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "tiers": self.tiers,
            "equality": self.equality,
            "meta": self.meta,
        }

    def report(self) -> str:
        lines = [
            f"megabatch bench ({self.meta['sessions']} sessions/tick"
            + (", quick" if self.meta.get("quick") else "")
            + ")"
        ]
        for name, t in self.tiers.items():
            lines.append(
                f"  {name}: pooled {t['pooled_sps']:.0f} s/s -> megabatch f64 "
                f"{t['megabatch_f64_sps']:.0f} s/s ({t['megabatch_f64_speedup']:.2f}x), "
                f"f32 {t['megabatch_f32_sps']:.0f} s/s ({t['megabatch_speedup']:.2f}x, "
                f"floor {MEGABATCH_SPEEDUP_MIN:.1f}x)"
            )
            if "quantized_sps" in t:
                lines.append(
                    f"    quantized int8/f16: {t['quantized_sps']:.0f} s/s "
                    f"({t['quantized_speedup']:.2f}x over f32, floor "
                    f"{QUANTIZED_SPEEDUP_MIN:.1f}x)"
                )
        eq = ", ".join(f"{k}={v}" for k, v in self.equality.items())
        lines.append(f"  equality: {eq}")
        return "\n".join(lines)


def _best_of(repeats: int, run: Callable[[], float]) -> float:
    """Best (minimum) measurement across repeats — noise-robust timing."""
    return min(run() for _ in range(repeats))


def _make_detectors(cfg: MegabatchBenchConfig):
    from repro.ml.detector import AutoencoderDetector, LstmDetector

    lstm = LstmDetector(
        window=cfg.window,
        feature_dim=cfg.feature_dim,
        hidden_dim=cfg.lstm_hidden_dim,
        seed=cfg.seed,
    )
    ae = AutoencoderDetector(
        window=cfg.window,
        feature_dim=cfg.feature_dim,
        hidden_dim=cfg.ae_hidden_dim,
        latent_dim=cfg.ae_latent_dim,
        seed=cfg.seed,
    )
    return lstm, ae


def _fill_arena(cfg: MegabatchBenchConfig, rng) -> tuple:
    """An arena with every session holding a full window of rows."""
    arena = SessionWindowArena(cfg.feature_dim, cfg.window)
    rows = (rng.random((cfg.sessions, cfg.window, cfg.feature_dim)) * 0.1).astype(
        np.float32
    )
    for sid in range(cfg.sessions):
        for t in range(cfg.window):
            arena.append(sid, rows[sid, t])
    return arena, rows


def _bench_detector(
    cfg: MegabatchBenchConfig, name: str, detector, result: MegabatchBenchResult
) -> None:
    rng = np.random.default_rng(cfg.seed + hash(name) % 1000)
    arena, rows = _fill_arena(cfg, rng)
    session_ids = list(range(cfg.sessions))
    width = cfg.window * cfg.feature_dim
    gather_buf = np.empty((cfg.sessions, width), dtype=arena.dtype)

    def gather() -> np.ndarray:
        for row, sid in enumerate(session_ids):
            gather_buf[row] = arena.window_rows(sid).reshape(-1)
        return gather_buf

    def score_rows(matrix: np.ndarray) -> np.ndarray:
        """The f64 tier's row-shaped scoring over a gathered matrix."""
        return np.array(
            [float(detector.scores(matrix[i : i + 1])[0]) for i in range(len(matrix))]
        )

    # f64 bit-identity: gathered rows must score exactly like the seed's
    # own per-session window assembly (stack straight from the arena).
    matrix = gather()
    check = min(cfg.equality_sessions, cfg.sessions)
    tier_scores = score_rows(matrix[:check])
    seed_scores = np.array(
        [
            float(detector.scores(arena.window_rows(sid).reshape(1, -1))[0])
            for sid in session_ids[:check]
        ]
    )
    result.equality[f"megabatch_f64_exact_{name}"] = bool(
        np.array_equal(tier_scores, seed_scores)
    )

    def tick_time(tick: Callable[[], None]) -> float:
        def run() -> float:
            t0 = time.perf_counter()
            for _ in range(cfg.ticks):
                tick()
            return (time.perf_counter() - t0) / cfg.ticks

        run()  # warm-up (BLAS thread spin-up, allocator)
        return _best_of(cfg.repeats, run)

    # Both sides run their real per-tick score handling: the pooled path
    # pays it per window in the callback, the megabatch paths batch it.
    from repro.obs.metrics import Counter, Histogram

    hist = Histogram(buckets=(1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0))
    windows_counter = Counter()
    alert_threshold = 1e9  # handling cost without the (rare) alert path

    def handle(score: float, done_at: float) -> None:
        windows_counter.inc()
        hist.observe(score)
        if score > alert_threshold:
            raise AssertionError  # pragma: no cover

    def handle_batch(scores: np.ndarray) -> None:
        windows_counter.inc(len(scores))
        hist.observe_many(scores)
        np.flatnonzero(scores > alert_threshold)

    # Tier 1: the pooled per-session path (baseline).
    pool = InferencePool(
        lambda m: detector.scores(m),
        workers=cfg.pool_workers,
        batch_windows=cfg.pool_batch_windows,
        name=f"bench-{name}",
    )

    def pooled_tick() -> None:
        for sid in session_ids:
            pool.submit(sid, arena.window_rows(sid).reshape(-1), handle)
        pool.flush()

    # Tier 2: gathered matrix, row-shaped f64 calls (the exact mode).
    def megabatch_f64_tick() -> None:
        handle_batch(score_rows(gather()))

    # Tier 3: gathered matrix, ONE fused compiled-f32 call per tick.
    compiled32 = compile_detector(detector, "float32")
    result.equality[f"megabatch_f32_close_{name}"] = bool(
        np.allclose(
            compiled32.scores(matrix[:check]), tier_scores, rtol=1e-4, atol=1e-6
        )
    )

    def megabatch_f32_tick() -> None:
        handle_batch(compiled32.scores(gather()))

    pooled_s = tick_time(pooled_tick)
    f64_s = tick_time(megabatch_f64_tick)
    f32_s = tick_time(megabatch_f32_tick)
    tier = {
        "pooled_sps": cfg.sessions / pooled_s,
        "megabatch_f64_sps": cfg.sessions / f64_s,
        "megabatch_f32_sps": cfg.sessions / f32_s,
        "megabatch_f64_speedup": pooled_s / f64_s,
        "megabatch_speedup": pooled_s / f32_s,
    }

    # Tier 4 (LSTM only): carried-state quantized step + ring-max read.
    if name == "lstm":
        settings = MegabatchSettings(quantized=True)
        calibration = calibrate_windows(rows.reshape(cfg.sessions, -1), settings)
        engine = QuantizedLstmEngine(
            detector, calibration, settings, initial_sessions=cfg.sessions
        )
        step_rows = rows[:, 0, :]  # one fresh record per session per tick
        for t in range(cfg.window):  # pre-tick state, like the live path
            engine.megastep(session_ids, rows[:, t, :])

        def quantized_tick() -> None:
            engine.megastep(session_ids, step_rows)
            handle_batch(engine.window_scores_for(session_ids))

        quant_s = tick_time(quantized_tick)
        tier["quantized_sps"] = cfg.sessions / quant_s
        tier["quantized_speedup"] = f32_s / quant_s
        quant_scores = engine.window_scores_for(session_ids)
        result.equality["quantized_finite"] = bool(np.isfinite(quant_scores).all())
        # Decision agreement at matched percentile operating points
        # (informational; the hard contract lives in the Table-2 metric
        # tolerance tests).
        f64_scores = score_rows(matrix)
        f64_cut = np.percentile(f64_scores, 97.5)
        quant_cut = np.percentile(quant_scores, 97.5)
        agreement = float(
            np.mean((f64_scores > f64_cut) == (quant_scores > quant_cut))
        )
        result.equality["quantized_decision_agreement"] = round(agreement, 4)

    result.tiers[name] = tier


def run_bench(
    config: Optional[MegabatchBenchConfig] = None, quick: bool = False
) -> MegabatchBenchResult:
    """Measure all tiers for both detectors, plus the equality contracts."""
    cfg = config or (MegabatchBenchConfig.quick() if quick else MegabatchBenchConfig())
    result = MegabatchBenchResult()
    result.meta = {
        "quick": quick,
        "sessions": cfg.sessions,
        "window": cfg.window,
        "feature_dim": cfg.feature_dim,
        "ticks": cfg.ticks,
        "pool_batch_windows": cfg.pool_batch_windows,
    }
    lstm, ae = _make_detectors(cfg)
    _bench_detector(cfg, "lstm", lstm, result)
    _bench_detector(cfg, "autoencoder", ae, result)
    return result


def violations(result: MegabatchBenchResult, baseline: Optional[dict] = None) -> list:
    """Gate a result against the hard floors and the committed baseline."""
    out: list[str] = []
    for key, ok in result.equality.items():
        if isinstance(ok, bool) and not ok:
            out.append(f"equality contract broken: {key}")
    for name, tier in result.tiers.items():
        speedup = tier.get("megabatch_speedup", 0.0)
        if speedup < MEGABATCH_SPEEDUP_MIN:
            out.append(
                f"{name} megabatch speedup {speedup:.2f}x below floor "
                f"{MEGABATCH_SPEEDUP_MIN:.1f}x"
            )
        if "quantized_speedup" in tier and tier["quantized_speedup"] < QUANTIZED_SPEEDUP_MIN:
            out.append(
                f"{name} quantized speedup {tier['quantized_speedup']:.2f}x below "
                f"floor {QUANTIZED_SPEEDUP_MIN:.1f}x"
            )
    if baseline:
        paths = []
        for name, tier in result.tiers.items():
            paths.append((("tiers", name, "megabatch_speedup"), tier["megabatch_speedup"]))
            if "quantized_speedup" in tier:
                paths.append(
                    (("tiers", name, "quantized_speedup"), tier["quantized_speedup"])
                )
        for path, current in paths:
            node = baseline
            for part in path:
                node = node.get(part, {}) if isinstance(node, dict) else {}
            if isinstance(node, (int, float)) and current < node * BASELINE_SLACK:
                out.append(
                    f"{'.'.join(path)} {current:.2f}x regressed below "
                    f"{BASELINE_SLACK:.0%} of committed baseline {node:.2f}x"
                )
    return out


def load_baseline(path) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def save_result(result: MegabatchBenchResult, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
