"""repro.obs — dependency-free observability for the whole stack.

Three pillars (see the module docstrings for details):

- :mod:`repro.obs.metrics` — counters / gauges / histograms with labeled
  series, snapshot/reset, JSONL + text export;
- :mod:`repro.obs.logging` — leveled structured events with a ring buffer
  and pluggable sinks (library code never ``print()``\\ s);
- :mod:`repro.obs.tracing` — spans over the closed control loop with a
  per-stage latency breakdown and critical-path report.

Everything here is stdlib-only so any layer (sim, oran, telemetry, ml,
core) can import it without cycles. The conventional entry point is the
simulator's context: ``sim.obs.metrics`` / ``sim.obs.logger`` /
``sim.obs.tracer``.
"""

from repro.obs.context import ObsContext
from repro.obs.logging import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    LogRecord,
    ObsLogger,
    ScopedLogger,
    stderr_sink,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WallTimer,
)
from repro.obs.tracing import Span, Trace, Tracer

# Canonical stage names of the closed loop, in loop order — used by the
# pipeline's trace builder, the CLI renderer, and the benchmark artifacts.
LOOP_STAGES = (
    "capture",
    "indication",
    "sdl_write",
    "detection",
    "verdict",
    "action",
)

__all__ = [
    "ObsContext",
    "ObsLogger",
    "ScopedLogger",
    "LogRecord",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "WallTimer",
    "Tracer",
    "Trace",
    "Span",
    "LOOP_STAGES",
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
    "stderr_sink",
]
