"""Structured, component-scoped event logging.

Library code must not ``print()`` — diagnostics flow through an
:class:`ObsLogger` as leveled, timestamped records (simulated time + wall
clock) kept in a bounded ring buffer and optionally fanned out to pluggable
sinks (a file, a test assertion, stderr for operators). Each simulated
entity gets a :class:`ScopedLogger` bound to its component name so records
are attributable without threading strings everywhere.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

_LEVEL_NAMES = {DEBUG: "DEBUG", INFO: "INFO", WARNING: "WARNING", ERROR: "ERROR"}

Sink = Callable[["LogRecord"], None]


@dataclass(frozen=True)
class LogRecord:
    """One structured event."""

    sim_time: float
    wall_time: float
    level: int
    component: str
    message: str
    fields: tuple = ()  # sorted ((key, value), ...) pairs

    @property
    def level_name(self) -> str:
        return _LEVEL_NAMES.get(self.level, str(self.level))

    def to_dict(self) -> dict:
        return {
            "sim_time_s": self.sim_time,
            "wall_time_s": self.wall_time,
            "level": self.level_name,
            "component": self.component,
            "message": self.message,
            **dict(self.fields),
        }

    def render(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields)
        base = f"[{self.sim_time:9.3f}s] {self.level_name:<7} {self.component}: {self.message}"
        return f"{base} {extra}".rstrip()


class ObsLogger:
    """Leveled logger with a ring buffer and pluggable sinks."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = 4096,
        level: int = INFO,
    ) -> None:
        self.clock = clock or (lambda: 0.0)
        self.level = level
        self._records: deque[LogRecord] = deque(maxlen=capacity)
        self._sinks: list[Sink] = []

    # -- configuration --------------------------------------------------------

    def set_level(self, level: int) -> None:
        self.level = level

    def add_sink(self, sink: Sink) -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink: Sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    # -- emission -------------------------------------------------------------

    def log(self, level: int, component: str, message: str, **fields) -> Optional[LogRecord]:
        if level < self.level:
            return None
        record = LogRecord(
            sim_time=self.clock(),
            wall_time=time.perf_counter(),
            level=level,
            component=component,
            message=message,
            fields=tuple(sorted(fields.items())),
        )
        self._records.append(record)
        for sink in self._sinks:
            sink(record)
        return record

    def debug(self, component: str, message: str, **fields):
        return self.log(DEBUG, component, message, **fields)

    def info(self, component: str, message: str, **fields):
        return self.log(INFO, component, message, **fields)

    def warning(self, component: str, message: str, **fields):
        return self.log(WARNING, component, message, **fields)

    def error(self, component: str, message: str, **fields):
        return self.log(ERROR, component, message, **fields)

    def scoped(self, component: str) -> "ScopedLogger":
        return ScopedLogger(self, component)

    # -- access ---------------------------------------------------------------

    @property
    def records(self) -> list[LogRecord]:
        return list(self._records)

    def records_for(self, component: str) -> list[LogRecord]:
        return [r for r in self._records if r.component == component]

    def render(self, limit: Optional[int] = None) -> str:
        records = self.records
        if limit is not None:
            records = records[-limit:]
        return "\n".join(record.render() for record in records)

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(r.to_dict(), sort_keys=True) for r in self._records)


@dataclass
class ScopedLogger:
    """An :class:`ObsLogger` view bound to one component name."""

    logger: ObsLogger
    component: str

    def log(self, level: int, message: str, **fields):
        return self.logger.log(level, self.component, message, **fields)

    def debug(self, message: str, **fields):
        return self.logger.debug(self.component, message, **fields)

    def info(self, message: str, **fields):
        return self.logger.info(self.component, message, **fields)

    def warning(self, message: str, **fields):
        return self.logger.warning(self.component, message, **fields)

    def error(self, message: str, **fields):
        return self.logger.error(self.component, message, **fields)


def stderr_sink(record: LogRecord) -> None:
    """A ready-made sink for operators who do want console output."""
    import sys

    print(record.render(), file=sys.stderr)
