"""Metrics registry: counters, gauges, and histograms with labeled series.

Dependency-free (stdlib only) so every layer of the stack can import it
without cycles. A :class:`MetricsRegistry` owns metric *families* (one name,
one type, one help string); each family holds labeled *series* (one
instrument per unique label set). Snapshots carry both the simulated-time
clock (injected by the owner, normally the :class:`~repro.sim.engine.Simulator`)
and a wall-clock ``perf_counter`` timestamp so exported artifacts can be
correlated against either timeline.

Design constraints, in order: (1) the hot path — ``Counter.inc`` and
``Histogram.observe`` — must be cheap enough to run per simulated event and
per telemetry record (the near-RT loop budget is 10ms-1s and the bench
overhead budget is 10% wall-clock); (2) snapshots must be plain-JSON
serializable for the JSONL export and the benchmark artifacts.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from typing import Any, Callable, Iterable, Optional

LabelKey = tuple  # sorted ((key, value), ...) pairs

# Latency-shaped default buckets: 100us .. 10s, roughly log-spaced.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

# Reservoir cap per histogram series; beyond it old observations are
# overwritten ring-style (deterministic, no RNG — runs stay reproducible).
RESERVOIR_CAP = 4096


def _label_key(labels: Optional[dict]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def export(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Point-in-time value; either set directly or computed at snapshot."""

    __slots__ = ("_value", "fn")

    def __init__(self, fn: Optional[Callable[[], float]] = None) -> None:
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def export(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Distribution summary: bucket counts plus a bounded reservoir.

    The buckets give cheap cumulative counts (Prometheus-style ``le``
    semantics); the reservoir keeps up to :data:`RESERVOIR_CAP` raw
    observations (ring-overwritten once full) for percentile estimates.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "total", "min", "max", "_reservoir", "_ring")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir: list[float] = []
        self._ring = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        if len(self._reservoir) < RESERVOIR_CAP:
            self._reservoir.append(value)
        else:
            self._reservoir[self._ring] = value
            self._ring = (self._ring + 1) % RESERVOIR_CAP

    def observe_many(self, values) -> None:
        """Bulk-observe a numeric array (the megabatch per-tick path).

        Equivalent to ``for v in values: observe(v)`` for every exported
        statistic except ``total``, whose float summation order may differ
        in the last bits (vectorized pairwise sum vs sequential adds) —
        histogram internals sit outside the scoring bit-identity contract.
        Accepts any sequence; uses numpy (imported lazily, keeping this
        module stdlib-only at import time) when available for O(log b)
        work per bucket instead of per value.
        """
        try:
            import numpy as np
        except ImportError:
            for value in values:
                self.observe(value)
            return
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        self.count += int(arr.size)
        self.total += float(arr.sum())
        lo = float(arr.min())
        hi = float(arr.max())
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi
        # Cumulative "le" bucket fill. observe() places v via
        # bisect_left(buckets, v), i.e. bucket i holds (buckets[i-1],
        # buckets[i]] — so the cumulative count at boundary b is
        # #{v <= b} = searchsorted(sorted, b, side="right").
        sorted_arr = np.sort(arr)
        edges = np.searchsorted(sorted_arr, np.asarray(self.buckets), side="right")
        per_bucket = np.diff(np.concatenate(([0], edges, [arr.size])))
        for i, n in enumerate(per_bucket):
            if n:
                self.bucket_counts[i] += int(n)
        for value in arr.tolist():
            if len(self._reservoir) < RESERVOIR_CAP:
                self._reservoir.append(value)
            else:
                self._reservoir[self._ring] = value
                self._ring = (self._ring + 1) % RESERVOIR_CAP

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def count_under(self, threshold: float) -> int:
        """Observations known to be ``<= threshold`` from the ``le`` buckets.

        Exact when ``threshold`` is a bucket boundary; otherwise the count
        is conservative (the partial bucket straddling the threshold is
        excluded). This is the "good events" side of a latency SLI.
        """
        idx = bisect_left(self.buckets, threshold)
        if idx < len(self.buckets) and self.buckets[idx] == threshold:
            idx += 1
        return sum(self.bucket_counts[:idx])

    def percentile(self, p: float) -> Optional[float]:
        """Approximate percentile (exact until the reservoir wraps)."""
        if not self._reservoir:
            return None
        ordered = sorted(self._reservoir)
        rank = min(len(ordered) - 1, int(p / 100.0 * len(ordered)))
        return ordered[rank]

    def stats(self) -> dict:
        if not self.count:
            return {"n": 0}
        return {
            "n": self.count,
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
            "sum": self.total,
        }

    def export(self) -> dict:
        out = self.stats()
        out["buckets"] = {
            ("+inf" if i == len(self.buckets) else repr(self.buckets[i])): c
            for i, c in enumerate(self.bucket_counts)
            if c
        }
        return out


class _Family:
    __slots__ = ("name", "kind", "help", "series", "buckets")

    def __init__(self, name: str, kind: str, help: str = "", buckets=DEFAULT_BUCKETS) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.series: dict[LabelKey, Any] = {}


class MetricsRegistry:
    """Named metric families with labeled series and JSON/text export."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        # ``clock`` supplies simulated time; defaults to a frozen zero clock
        # for registries used outside a simulation.
        self.clock = clock or (lambda: 0.0)
        self._families: dict[str, _Family] = {}

    # -- instrument accessors (get-or-create) --------------------------------

    def _family(self, name: str, kind: str, help: str, buckets=DEFAULT_BUCKETS) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise TypeError(f"metric {name!r} is a {family.kind}, not a {kind}")
        return family

    def counter(self, name: str, labels: Optional[dict] = None, help: str = "") -> Counter:
        family = self._family(name, "counter", help)
        key = _label_key(labels)
        series = family.series.get(key)
        if series is None:
            series = family.series[key] = Counter()
        return series

    def gauge(
        self,
        name: str,
        labels: Optional[dict] = None,
        fn: Optional[Callable[[], float]] = None,
        help: str = "",
    ) -> Gauge:
        family = self._family(name, "gauge", help)
        key = _label_key(labels)
        series = family.series.get(key)
        if series is None:
            series = family.series[key] = Gauge(fn=fn)
        elif fn is not None:
            series.fn = fn
        return series

    def histogram(
        self,
        name: str,
        labels: Optional[dict] = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        family = self._family(name, "histogram", help, buckets)
        key = _label_key(labels)
        series = family.series.get(key)
        if series is None:
            series = family.series[key] = Histogram(buckets=family.buckets)
        return series

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Drop every family and series (fresh run)."""
        self._families.clear()

    def names(self) -> list[str]:
        return sorted(self._families)

    def family_kind(self, name: str) -> Optional[str]:
        """The family's instrument kind, or ``None`` if it doesn't exist."""
        family = self._families.get(name)
        return family.kind if family is not None else None

    def family_series(self, name: str) -> list:
        """``(labels dict, instrument)`` pairs of a family (empty if absent).

        Read-only introspection for consumers that aggregate across the
        labeled series of one family (the SLO engine, the OpenMetrics
        exporter) without creating series as the accessors would.
        """
        family = self._families.get(name)
        if family is None:
            return []
        return [(dict(key), series) for key, series in sorted(family.series.items())]

    def families(self) -> list:
        """``(name, kind, help, [(labels, instrument), ...])`` per family."""
        return [
            (
                name,
                family.kind,
                family.help,
                [(dict(key), series) for key, series in sorted(family.series.items())],
            )
            for name, family in sorted(self._families.items())
        ]

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict dump of every series, stamped with both clocks."""
        families = {}
        for name in sorted(self._families):
            family = self._families[name]
            families[name] = {
                "type": family.kind,
                "help": family.help,
                "series": [
                    {"labels": dict(key), **series.export()}
                    for key, series in sorted(family.series.items())
                ],
            }
        return {
            "sim_time_s": self.clock(),
            "wall_time_s": time.perf_counter(),
            "metrics": families,
        }

    def to_jsonl(self) -> str:
        """One JSON object per series — the machine-readable export."""
        snap = self.snapshot()
        lines = []
        for name, family in snap["metrics"].items():
            for series in family["series"]:
                lines.append(
                    json.dumps(
                        {
                            "name": name,
                            "type": family["type"],
                            "sim_time_s": snap["sim_time_s"],
                            "wall_time_s": snap["wall_time_s"],
                            **series,
                        },
                        sort_keys=True,
                    )
                )
        return "\n".join(lines)

    def render(self) -> str:
        """Human-readable dump, grouped by family."""
        lines = [f"metrics @ sim t={self.clock():.3f}s"]
        for name in sorted(self._families):
            family = self._families[name]
            for key, series in sorted(family.series.items()):
                label_text = (
                    "{" + ",".join(f"{k}={v}" for k, v in key) + "}" if key else ""
                )
                if family.kind == "histogram":
                    s = series.stats()
                    if s["n"]:
                        body = (
                            f"n={s['n']} mean={s['mean']:.6g} p50={s['p50']:.6g} "
                            f"p99={s['p99']:.6g} max={s['max']:.6g}"
                        )
                    else:
                        body = "n=0"
                else:
                    body = f"{series.value:g}"
                lines.append(f"  {name}{label_text:<1} [{family.kind}] {body}")
        return "\n".join(lines)


class WallTimer:
    """Context manager: observe a wall-clock ``perf_counter`` duration.

    Usage::

        with WallTimer(registry.histogram("mobiwatch.inference_wall_s")):
            detector.scores(window)
    """

    __slots__ = ("histogram", "_start", "elapsed")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self.elapsed = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
        self.histogram.observe(self.elapsed)
