"""One observability context per simulation: metrics + logger + tracer.

The :class:`~repro.sim.engine.Simulator` owns an :class:`ObsContext` and
every entity reaches it as ``self.sim.obs`` — the same pattern as the RNG
registry. All three pillars share the simulated clock, so exported records
line up on the same timeline.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.logging import ObsLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class ObsContext:
    """Bundles the three observability pillars around one clock."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.metrics = MetricsRegistry(clock=clock)
        self.logger = ObsLogger(clock=clock)
        self.tracer = Tracer(clock=clock)

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Rebind all pillars to a (simulated) clock."""
        self.metrics.clock = clock
        self.logger.clock = clock
        self.tracer.clock = clock

    def reset(self) -> None:
        self.metrics.reset()
        self.tracer.reset()

    def snapshot(self) -> dict:
        """Metrics snapshot plus trace summaries — the run's obs artifact."""
        out = self.metrics.snapshot()
        out["traces"] = self.tracer.critical_path_report()
        return out
