"""Span-based tracing of the closed control loop.

A :class:`Trace` is one unit of work crossing the system — for 6G-XSec, one
MobiFlow telemetry window's journey from capture to control action. It holds
ordered :class:`Span`\\ s (named stages with sim-time start/end and optional
wall-clock cost) so per-stage latency and the critical path are first-class
artifacts rather than scattered timestamps.

Spans can be opened live (``span = trace.begin("detection"); span.finish()``)
or reconstructed from timestamps recorded along the way
(``trace.span("verdict", start, end)``) — the closed-loop pipeline uses the
latter because a window's stages execute in different entities.

The :class:`Tracer` aggregates traces into a per-stage breakdown (count /
mean / p50 / max per stage name, in first-seen stage order) and a
critical-path report naming, per trace and in aggregate, the stage that
dominates end-to-end latency.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.metrics import Histogram


@dataclass
class Span:
    """One named stage of a trace, in simulated seconds."""

    name: str
    start: float
    end: Optional[float] = None
    wall_cost_s: Optional[float] = None  # optional CPU cost of the stage
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def finish(self, end: float, **attrs) -> "Span":
        self.end = end
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        out = {"name": self.name, "start_s": self.start, "end_s": self.end}
        if self.duration_s is not None:
            out["duration_s"] = self.duration_s
        if self.wall_cost_s is not None:
            out["wall_cost_s"] = self.wall_cost_s
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


@dataclass
class Trace:
    """One traced journey through the loop."""

    trace_id: int
    name: str
    attrs: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    _clock: Optional[Callable[[], float]] = None

    def span(
        self,
        name: str,
        start: float,
        end: Optional[float] = None,
        wall_cost_s: Optional[float] = None,
        **attrs,
    ) -> Span:
        """Record a (possibly already completed) stage."""
        created = Span(name=name, start=start, end=end, wall_cost_s=wall_cost_s, attrs=attrs)
        self.spans.append(created)
        return created

    def begin(self, name: str, **attrs) -> Span:
        """Open a live span at the current clock time."""
        if self._clock is None:
            raise RuntimeError("trace has no clock; use span(start, end) instead")
        return self.span(name, start=self._clock(), **attrs)

    @property
    def start_s(self) -> Optional[float]:
        starts = [s.start for s in self.spans]
        return min(starts) if starts else None

    @property
    def end_s(self) -> Optional[float]:
        ends = [s.end for s in self.spans if s.end is not None]
        return max(ends) if ends else None

    @property
    def duration_s(self) -> Optional[float]:
        if self.start_s is None or self.end_s is None:
            return None
        return self.end_s - self.start_s

    def critical_span(self) -> Optional[Span]:
        """The finished span with the largest sim-time duration."""
        finished = [s for s in self.spans if s.duration_s is not None]
        if not finished:
            return None
        return max(finished, key=lambda s: s.duration_s)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration_s": self.duration_s,
            "spans": [s.to_dict() for s in sorted(self.spans, key=lambda s: s.start)],
        }


class Tracer:
    """Collects traces and reports per-stage latency over all of them."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock = clock
        self.traces: list[Trace] = []
        self._ids = itertools.count(1)

    def trace(self, name: str, **attrs) -> Trace:
        created = Trace(trace_id=next(self._ids), name=name, attrs=attrs, _clock=self.clock)
        self.traces.append(created)
        return created

    def reset(self) -> None:
        self.traces.clear()

    # -- aggregation ----------------------------------------------------------

    def stage_breakdown(self, stage_order: Optional[list] = None) -> dict:
        """Per-stage duration stats across every trace.

        Returns ``{stage: {n, mean, p50, p90, p99, max, ...}}`` ordered by
        ``stage_order`` when given, else by first appearance.
        """
        stages: dict[str, Histogram] = {}
        order: list[str] = list(stage_order or [])
        for trace in self.traces:
            for span in trace.spans:
                if span.duration_s is None:
                    continue
                if span.name not in stages:
                    stages[span.name] = Histogram()
                    if span.name not in order:
                        order.append(span.name)
                stages[span.name].observe(span.duration_s)
        return {name: stages[name].stats() for name in order if name in stages}

    def critical_path_report(self) -> dict:
        """Which stage dominates each trace's end-to-end latency."""
        dominant: dict[str, int] = {}
        durations = Histogram()
        for trace in self.traces:
            worst = trace.critical_span()
            if worst is None:
                continue
            dominant[worst.name] = dominant.get(worst.name, 0) + 1
            if trace.duration_s is not None:
                durations.observe(trace.duration_s)
        return {
            "traces": len(self.traces),
            "end_to_end_s": durations.stats(),
            "dominant_stage_counts": dict(
                sorted(dominant.items(), key=lambda kv: -kv[1])
            ),
        }

    def render_breakdown(self, stage_order: Optional[list] = None, title: str = "") -> str:
        """Human-readable per-stage latency table plus the critical path."""
        breakdown = self.stage_breakdown(stage_order)
        lines = [title or f"per-stage latency over {len(self.traces)} traces (sim seconds)"]
        header = f"  {'stage':<12} {'n':>6} {'mean':>10} {'p50':>10} {'p99':>10} {'max':>10}"
        lines.append(header)
        for stage, stats in breakdown.items():
            if not stats.get("n"):
                continue
            lines.append(
                f"  {stage:<12} {stats['n']:>6} {stats['mean']:>10.4f} "
                f"{stats['p50']:>10.4f} {stats['p99']:>10.4f} {stats['max']:>10.4f}"
            )
        report = self.critical_path_report()
        if report["dominant_stage_counts"]:
            dominant = ", ".join(
                f"{stage} ({count})" for stage, count in report["dominant_stage_counts"].items()
            )
            lines.append(f"  critical path dominated by: {dominant}")
        e2e = report["end_to_end_s"]
        if e2e.get("n"):
            lines.append(
                f"  end-to-end: mean={e2e['mean']:.4f}s p50={e2e['p50']:.4f}s max={e2e['max']:.4f}s"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"traces": [t.to_dict() for t in self.traces]}


class SimWallSpan:
    """Context manager: a live span that also records its wall-clock cost."""

    __slots__ = ("trace", "name", "clock", "attrs", "span", "_wall_start")

    def __init__(self, trace: Trace, name: str, **attrs) -> None:
        self.trace = trace
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> Span:
        self.span = self.trace.begin(self.name, **self.attrs)
        self._wall_start = time.perf_counter()
        return self.span

    def __exit__(self, *exc) -> None:
        self.span.wall_cost_s = time.perf_counter() - self._wall_start
        if self.span.end is None and self.trace._clock is not None:
            self.span.end = self.trace._clock()
