"""Discrete-event simulation engine.

The engine models time as a float number of seconds. Events are callbacks
scheduled at absolute times; ties are broken by insertion order so runs are
deterministic. The :class:`Simulator` owns the clock, the event queue, and a
registry of named RNG streams (see :mod:`repro.sim.rng`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.obs import ObsContext
from repro.sim.rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class Event:
    """A single scheduled event.

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    tie-breaker so two events at the same instant fire in scheduling order.

    A ``__slots__`` class rather than a dataclass: the engine's innermost
    loop allocates one of these per scheduled callback, and skipping the
    dataclass ``__init__``/``__dict__`` machinery measurably cuts the
    event-churn cost of timer-heavy workloads (repro.genfast).
    """

    __slots__ = ("time", "seq", "callback", "name", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        name: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False
        # Owning queue while the event is pending (None once popped): lets
        # cancel() keep the queue's live count exact in O(1).
        self._queue: Optional["EventQueue"] = None

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, seq={self.seq!r}, name={self.name!r}, "
            f"cancelled={self.cancelled!r})"
        )

    # Same ordering contract the (order=True) dataclass generated: compare
    # by (time, seq) only — the tie-breaking seq is unique per queue, so
    # equality on (time, seq) identifies the event.
    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __le__(self, other: "Event") -> bool:
        return (self.time, self.seq) <= (other.time, other.seq)

    def __gt__(self, other: "Event") -> bool:
        return (self.time, self.seq) > (other.time, other.seq)

    def __ge__(self, other: "Event") -> bool:
        return (self.time, self.seq) >= (other.time, other.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.seq) == (other.time, other.seq)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._live -= 1
            queue._cancelled += 1
            queue._maybe_compact()


class EventQueue:
    """A cancellable priority queue of :class:`Event` objects.

    ``len(queue)`` is O(1): a live-event count is maintained on push, pop
    and cancel instead of scanning the heap — the ``sim.queue_depth``
    metrics gauge reads it on every snapshot, which made the scan
    O(pending events) per scrape.

    Cancelled events are normally dropped lazily when popped, but a
    cancel-then-reschedule pattern (e.g. the megabatch maturity timers,
    re-armed on every session touch) can cancel far more events than it
    pops, growing the heap without bound. When more than half the heap is
    cancelled tombstones (and the heap is big enough to matter), the queue
    compacts: it filters the tombstones out and re-heapifies — O(live)
    work paid at most every O(live) cancellations, so amortized O(1).
    """

    # Never compact tiny heaps; the lazy path handles them fine.
    COMPACT_MIN_HEAP = 64

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self._cancelled = 0  # cancelled events still sitting in the heap

    def __len__(self) -> int:
        return self._live

    @property
    def heap_size(self) -> int:
        """Heap entries including cancelled tombstones (tests, gauges)."""
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], Any], name: str = "") -> Event:
        event = Event(time, next(self._counter), callback, name)
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                # Detach so a later cancel() on the fired event cannot
                # decrement the count of events still in the queue.
                event._queue = None
                self._live -= 1
                return event
            self._cancelled -= 1
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        return self._heap[0].time if self._heap else None

    def _maybe_compact(self) -> None:
        if (
            len(self._heap) >= self.COMPACT_MIN_HEAP
            and self._cancelled * 2 > len(self._heap)
        ):
            self.compact()

    def compact(self) -> int:
        """Drop cancelled tombstones and re-heapify; returns how many."""
        dropped = self._cancelled
        if dropped:
            self._heap = [event for event in self._heap if not event.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0
        return dropped


class Simulator:
    """Discrete-event simulator with a simulated clock.

    Usage::

        sim = Simulator(seed=7)
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run()
    """

    def __init__(self, seed: int = 0, obs: Optional[ObsContext] = None) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self.rng = RngRegistry(seed)
        # Observability context shared by everything holding this simulator.
        if obs is None:
            obs = ObsContext(clock=lambda: self._now)
        else:
            obs.set_clock(lambda: self._now)
        self.obs = obs
        self._events_counter = obs.metrics.counter(
            "sim.events_total", help="events fired by the engine"
        )
        # Gauges with collect functions cost nothing until snapshot time.
        obs.metrics.gauge(
            "sim.queue_depth", fn=lambda: len(self._queue), help="pending events"
        )
        obs.metrics.gauge(
            "sim.events_per_sim_s",
            fn=lambda: self._events_processed / self._now if self._now else 0.0,
            help="event rate per simulated second",
        )

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule(
        self, delay: float, callback: Callable[[], Any], name: str = ""
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, name=name)

    def schedule_at(
        self, time: float, callback: Callable[[], Any], name: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self._now}"
            )
        return self._queue.push(time, callback, name=name)

    def schedule_batch(
        self, delay: float, callbacks: List[Callable[[], Any]], name: str = ""
    ) -> Event:
        """Schedule many callbacks to fire at the same instant as ONE event.

        A UE fleet that ticks every member on the same cadence costs one
        heap entry per member per tick through :meth:`schedule`; this packs
        the whole tick into a single entry — O(1) heap churn per tick
        instead of O(fleet). The callbacks fire in list order, exactly as
        the per-callback path would have (same time, consecutive seqs).
        Cancelling the returned event cancels the entire batch.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        batch = list(callbacks)

        def fire() -> None:
            for callback in batch:
                callback()

        return self._queue.push(self._now + delay, fire, name=name)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue is empty, ``until`` is reached, or
        ``max_events`` have fired. Returns the number of events processed.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        processed = 0
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = self._queue.pop()
                if event is None:
                    break
                self._now = event.time
                event.callback()
                processed += 1
                self._events_processed += 1
                # Inlined Counter.inc: this is the engine's innermost loop.
                self._events_counter.value += 1
        finally:
            self._running = False
        return processed

    def step(self) -> bool:
        """Fire exactly the next event. Returns False if the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        event.callback()
        self._events_processed += 1
        self._events_counter.value += 1
        return True
