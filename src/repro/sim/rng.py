"""Named deterministic RNG streams.

Experiments need independent randomness per subsystem (channel noise, UE
behaviour, attack timing) that stays stable when an unrelated subsystem adds
or removes random draws. Each stream is seeded from the registry seed plus a
stable hash of the stream name, so ``registry.stream("channel")`` returns the
same sequence regardless of what other streams exist.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(base_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Registry of independently seeded ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the RNG stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(_derive_seed(self._seed, name))
        return self._streams[name]

    def reset(self, name: str) -> None:
        """Re-seed one stream back to its initial state."""
        self._streams[name] = random.Random(_derive_seed(self._seed, name))

    def reset_all(self) -> None:
        for name in list(self._streams):
            self.reset(name)
