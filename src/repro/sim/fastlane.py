"""Sim fast lane: batched fleet ticking (repro.genfast).

Large UE fleets driven on a shared cadence are the dominant event-churn
source in the generation benchmarks: a 500-UE fleet ticking at 10 Hz costs
5000 heap pushes per simulated second through ``Simulator.schedule``. The
:class:`FleetTicker` packs each tick into a single
:meth:`~repro.sim.engine.Simulator.schedule_batch` event — one heap entry
per tick regardless of fleet size — while preserving the exact firing
order the per-member path would have produced (members fire in
registration order at the same instant).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.sim.engine import Event, Simulator

Tick = Callable[[], Any]


class FleetTicker:
    """Drives a fleet of per-member callbacks on a fixed cadence.

    Usage::

        ticker = FleetTicker(sim, period_s=0.1, name="ue-fleet")
        for ue in fleet:
            ticker.add(ue.tick)
        ticker.start()
        sim.run(until=30.0)

    Members added while the ticker is running join at the next tick.
    ``remove`` takes effect at the next tick as well; a member removed
    mid-tick still fires for the tick in progress (matching what a
    per-member ``schedule`` loop would have already committed to).
    """

    def __init__(
        self,
        sim: Simulator,
        period_s: float,
        name: str = "fleet-tick",
    ) -> None:
        if period_s <= 0:
            raise ValueError(f"period_s must be positive (got {period_s})")
        self.sim = sim
        self.period_s = period_s
        self.name = name
        self.ticks_fired = 0
        self._members: List[Tick] = []
        self._pending: Optional[Event] = None
        self._running = False

    def __len__(self) -> int:
        return len(self._members)

    def add(self, tick: Tick) -> None:
        """Register a member; it fires every tick from the next one on."""
        self._members.append(tick)

    def remove(self, tick: Tick) -> bool:
        """Drop a member (first matching registration). True if found."""
        try:
            self._members.remove(tick)
        except ValueError:
            return False
        return True

    def start(self, delay_s: float = 0.0) -> None:
        """Arm the tick loop; the first tick fires after ``delay_s``
        (default: one full period from now would be ``self.period_s`` —
        pass it explicitly to align with an existing cadence)."""
        if self._running:
            return
        self._running = True
        self._arm(delay_s if delay_s > 0 else self.period_s)

    def stop(self) -> None:
        """Cancel the pending tick; members stay registered."""
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _arm(self, delay_s: float) -> None:
        # One heap entry for the whole fleet: the batch fires the member
        # sweep plus a trailing re-arm callback, so the next tick is
        # scheduled from within the same event. The sweep reads the live
        # member list at fire time, so joins/leaves between ticks take
        # effect at the very next tick.
        self._pending = self.sim.schedule_batch(
            delay_s, [self._fire_members, self._rearm], name=self.name
        )

    def _fire_members(self) -> None:
        for tick in list(self._members):
            tick()

    def _rearm(self) -> None:
        self.ticks_fired += 1
        self._pending = None
        if self._running:
            self._arm(self.period_s)
