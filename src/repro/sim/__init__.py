"""Discrete-event simulation substrate.

Every other subsystem (the 5G RAN, the O-RAN control plane, the attack
runners) is built on this small discrete-event engine: a priority queue of
timestamped events, a simulated clock, and named deterministic RNG streams so
that experiments are reproducible bit-for-bit from a single seed.
"""

from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.entity import Entity
from repro.sim.fastlane import FleetTicker
from repro.sim.rng import RngRegistry

__all__ = ["Event", "EventQueue", "Simulator", "Entity", "FleetTicker", "RngRegistry"]
