"""Base class for simulated network entities (UEs, gNBs, RIC components)."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator


class Entity:
    """A named participant in the simulation.

    Entities hold a reference to the :class:`Simulator` and get convenience
    helpers for scheduling and logging. Subclasses implement protocol logic.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._log: list[tuple[float, str]] = []
        # Structured view of this entity's diagnostics (repro.obs).
        self.obs_log = sim.obs.logger.scoped(name)

    @property
    def now(self) -> float:
        return self.sim.now

    def schedule(self, delay: float, callback: Callable[[], Any], name: str = "") -> Event:
        label = name or f"{self.name}.event"
        return self.sim.schedule(delay, callback, name=label)

    def log(self, message: str, **fields) -> None:
        """Record a timestamped diagnostic line (kept in memory, not printed).

        Also routed to the simulation's structured logger so component
        diagnostics are queryable/exportable via ``sim.obs.logger``.
        """
        self._log.append((self.sim.now, message))
        self.obs_log.info(message, **fields)

    @property
    def logs(self) -> list[tuple[float, str]]:
        return list(self._log)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
