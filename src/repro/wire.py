"""TLV wire encoding shared by the RAN interfaces and the O-RAN E2 stack.

The real systems (OAI, the OSC RIC) exchange ASN.1 PER-encoded structures.
We substitute a compact, self-describing tag-length-value encoding that gives
the same property the reproduction needs: telemetry and control messages
cross interfaces as *bytes* and must be parsed back, so encode/decode bugs
are observable. The format is deterministic, so captures are byte-stable
across runs with the same seed.

Supported values: ``None``, ``bool``, ``int`` (signed, arbitrary size),
``float``, ``str``, ``bytes``, ``list`` and ``dict`` (string keys), nested
arbitrarily.
"""

from __future__ import annotations

import struct
from typing import Any

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08


class WireError(ValueError):
    """Raised on malformed wire data or unsupported values."""


def _encode_length(length: int) -> bytes:
    """Variable-length length field: 7 bits per byte, MSB = continuation."""
    if length < 0:
        raise WireError(f"negative length {length}")
    out = bytearray()
    while True:
        byte = length & 0x7F
        length >>= 7
        if length:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_length(data: bytes, offset: int) -> tuple[int, int]:
    length = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise WireError("truncated length field")
        byte = data[offset]
        offset += 1
        length |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return length, offset
        shift += 7
        if shift > 63:
            raise WireError("length field too long")


def encode(value: Any) -> bytes:
    """Encode ``value`` into TLV bytes."""
    if value is None:
        return bytes([_TAG_NONE])
    if value is False:
        return bytes([_TAG_FALSE])
    if value is True:
        return bytes([_TAG_TRUE])
    if isinstance(value, int):
        payload = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
        return bytes([_TAG_INT]) + _encode_length(len(payload)) + payload
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + struct.pack(">d", value)
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return bytes([_TAG_STR]) + _encode_length(len(payload)) + payload
    if isinstance(value, (bytes, bytearray)):
        return bytes([_TAG_BYTES]) + _encode_length(len(value)) + bytes(value)
    if isinstance(value, (list, tuple)):
        body = b"".join(encode(item) for item in value)
        return bytes([_TAG_LIST]) + _encode_length(len(body)) + body
    if isinstance(value, dict):
        parts = []
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(f"dict keys must be str, got {type(key).__name__}")
            parts.append(encode(key))
            parts.append(encode(item))
        body = b"".join(parts)
        return bytes([_TAG_DICT]) + _encode_length(len(body)) + body
    raise WireError(f"unsupported wire type: {type(value).__name__}")


# -- fast path ---------------------------------------------------------------
#
# encode_fast() produces bytes identical to encode() (a property test holds
# them equal) but builds the message in growing bytearrays instead of one
# bytes object per value, and interns the encodings of small strings — the
# telemetry schema repeats the same dozen field names in every record of
# every E2 indication.

_FLOAT_STRUCT = struct.Struct(">d")
_TAG_FLOAT_BYTE = bytes([_TAG_FLOAT])
_LEN1 = tuple(bytes([i]) for i in range(0x80))  # varint of any length < 128

_STR_CACHE: dict[str, bytes] = {}
_STR_CACHE_MAX_ENTRIES = 4096
_STR_CACHE_MAX_LEN = 64

_INT_CACHE: dict[int, bytes] = {}
_INT_CACHE_RANGE = (-1, 1024)


def _encode_str_fast(value: str) -> bytes:
    encoded = _STR_CACHE.get(value)
    if encoded is None:
        payload = value.encode("utf-8")
        encoded = bytes([_TAG_STR]) + _encode_length(len(payload)) + payload
        if len(value) <= _STR_CACHE_MAX_LEN and len(_STR_CACHE) < _STR_CACHE_MAX_ENTRIES:
            _STR_CACHE[value] = encoded
    return encoded


def _encode_int_fast(value: int) -> bytes:
    encoded = _INT_CACHE.get(value)
    if encoded is None:
        payload = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
        encoded = bytes([_TAG_INT]) + _encode_length(len(payload)) + payload
        if _INT_CACHE_RANGE[0] <= value <= _INT_CACHE_RANGE[1]:
            _INT_CACHE[value] = encoded
    return encoded


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_TAG_NONE)
        return
    if value is False:
        out.append(_TAG_FALSE)
        return
    if value is True:
        out.append(_TAG_TRUE)
        return
    kind = type(value)
    if kind is int:
        out += _encode_int_fast(value)
        return
    if kind is float:
        out += _TAG_FLOAT_BYTE
        out += _FLOAT_STRUCT.pack(value)
        return
    if kind is str:
        out += _encode_str_fast(value)
        return
    if kind is dict:
        body = bytearray()
        for key, item in value.items():
            if type(key) is not str:
                raise WireError(f"dict keys must be str, got {type(key).__name__}")
            body += _encode_str_fast(key)
            _encode_into(body, item)
        out.append(_TAG_DICT)
        n = len(body)
        out += _LEN1[n] if n < 0x80 else _encode_length(n)
        out += body
        return
    if kind in (list, tuple):
        body = bytearray()
        for item in value:
            _encode_into(body, item)
        out.append(_TAG_LIST)
        n = len(body)
        out += _LEN1[n] if n < 0x80 else _encode_length(n)
        out += body
        return
    # Subclasses (IntEnum, str subclasses, bytes...) fall back to the
    # reference encoder so the accepted-type surface stays identical.
    out += encode(value)


def encode_fast(value: Any) -> bytes:
    """Encode ``value`` into TLV bytes — byte-identical to :func:`encode`,
    built single-pass with interned small-string/int encodings."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


_DECODE_KEY_CACHE: dict[bytes, str] = {}
_DECODE_KEY_CACHE_MAX = 4096


def _decode_key_at(data: bytes, offset: int) -> tuple[Any, int]:
    """Decode a dict-key value, interning repeated short string keys."""
    if data[offset] == _TAG_STR:
        length, payload_start = _decode_length(data, offset + 1)
        end = payload_start + length
        if length <= _STR_CACHE_MAX_LEN and end <= len(data):
            raw = data[payload_start:end]
            key = _DECODE_KEY_CACHE.get(raw)
            if key is None:
                key = raw.decode("utf-8")
                if len(_DECODE_KEY_CACHE) < _DECODE_KEY_CACHE_MAX:
                    _DECODE_KEY_CACHE[raw] = key
            return key, end
    return _decode_at(data, offset)


def _decode_at(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise WireError("truncated value (no tag)")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FLOAT:
        if offset + 8 > len(data):
            raise WireError("truncated float")
        return struct.unpack(">d", data[offset : offset + 8])[0], offset + 8
    if tag in (_TAG_INT, _TAG_STR, _TAG_BYTES, _TAG_LIST, _TAG_DICT):
        length, offset = _decode_length(data, offset)
        end = offset + length
        if end > len(data):
            raise WireError("truncated payload")
        payload = data[offset:end]
        if tag == _TAG_INT:
            return int.from_bytes(payload, "big", signed=True), end
        if tag == _TAG_STR:
            return payload.decode("utf-8"), end
        if tag == _TAG_BYTES:
            return bytes(payload), end
        if tag == _TAG_LIST:
            items = []
            inner = 0
            while inner < len(payload):
                item, inner = _decode_at(payload, inner)
                items.append(item)
            return items, end
        # dict
        result: dict[str, Any] = {}
        inner = 0
        while inner < len(payload):
            key, inner = _decode_key_at(payload, inner)
            if not isinstance(key, str):
                raise WireError("dict key is not a string")
            if inner >= len(payload):
                raise WireError("dict key without value")
            item, inner = _decode_at(payload, inner)
            result[key] = item
        return result, end
    raise WireError(f"unknown tag 0x{tag:02x}")


def decode(data: bytes) -> Any:
    """Decode one TLV value; raises :class:`WireError` on trailing bytes."""
    value, offset = _decode_at(bytes(data), 0)
    if offset != len(data):
        raise WireError(f"{len(data) - offset} trailing bytes after value")
    return value


def decode_prefix(data: bytes) -> tuple[Any, bytes]:
    """Decode one TLV value and return ``(value, remaining_bytes)``."""
    value, offset = _decode_at(bytes(data), 0)
    return value, bytes(data[offset:])


# -- columnar batch container --------------------------------------------------
#
# repro.genfast ships telemetry batches struct-of-arrays: one TLV dict with
# named columns (equal-length lists) plus small scalar metadata, instead of
# one dict per record. The per-record schema repeats every field name in
# every record; the columnar form pays for each name once per batch, and
# vocab-interned columns (message names, causes) become small-int lists that
# hit the encoder's int cache. decode_columnar() restores the columns
# exactly — reconstructing per-record values from them is the caller's
# contract (see repro.telemetry.batch).

COLUMNAR_SCHEMA = 1


def encode_columnar(
    columns: dict[str, Any], meta: dict[str, Any] | None = None, n: int | None = None
) -> bytes:
    """Encode ``columns`` (plus scalar ``meta``) as one TLV dict.

    A column is either a list of ``n`` per-record values, or a ``bytes``
    buffer packing the column at a fixed stride (the caller owns the dtype
    contract). ``n`` is inferred from the list columns when not given;
    all-packed batches must pass it explicitly.
    """
    lengths = {len(values) for values in columns.values() if isinstance(values, list)}
    if len(lengths) > 1:
        raise WireError(f"columnar batch with ragged columns: {sorted(lengths)}")
    if lengths:
        inferred = lengths.pop()
        if n is not None and n != inferred:
            raise WireError(f"columnar batch n={n} but columns hold {inferred} values")
        n = inferred
    elif n is None:
        n = 0
    return encode_fast(
        {"schema": COLUMNAR_SCHEMA, "n": n, "meta": dict(meta or {}), "cols": columns}
    )


def decode_columnar(data: bytes) -> tuple[dict[str, Any], dict[str, Any], int]:
    """Decode a columnar batch; returns ``(columns, meta, n)``."""
    value = decode(data)
    if not isinstance(value, dict) or value.get("schema") != COLUMNAR_SCHEMA:
        raise WireError("not a columnar batch")
    n = value.get("n")
    columns = value.get("cols")
    meta = value.get("meta", {})
    if not isinstance(n, int) or not isinstance(columns, dict) or not isinstance(meta, dict):
        raise WireError("malformed columnar batch")
    for name, values in columns.items():
        if isinstance(values, list):
            if len(values) != n:
                raise WireError(
                    f"columnar batch column {name!r} holds {len(values)} of {n} values"
                )
        elif not isinstance(values, bytes):
            raise WireError(f"columnar batch column {name!r} is not a list or bytes")
    return columns, meta, n


# -- length-prefixed framing ---------------------------------------------------
#
# The process runtime (repro.runtime) moves TLV messages over stream
# sockets, where message boundaries are not preserved: a recv() may return
# half a message or three and a half. frame()/deframe() add an explicit
# boundary — a magic byte (so a desynced or corrupted stream is detected
# immediately instead of mis-parsed) plus a u32 payload length — and
# FrameDecoder reassembles frames from arbitrary chunk sequences.

FRAME_MAGIC = 0xA5
_FRAME_HEADER = struct.Struct(">BI")  # magic, payload length
FRAME_HEADER_SIZE = _FRAME_HEADER.size
# Upper bound on a single frame; anything larger is treated as a desync
# (a garbage length field would otherwise make the decoder wait forever).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class IncompleteFrameError(WireError):
    """The buffer ends mid-frame; feed more bytes and retry."""


def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length-prefixed frame for stream transports."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame payload of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _FRAME_HEADER.pack(FRAME_MAGIC, len(payload)) + payload


def deframe(data: bytes) -> tuple[bytes, bytes]:
    """Split one frame off ``data``; returns ``(payload, remaining)``.

    Raises :class:`IncompleteFrameError` when ``data`` ends mid-frame
    (partial read: keep the bytes and retry with more) and plain
    :class:`WireError` when the head of ``data`` is not a frame at all
    (garbage or a desynced stream — the connection cannot be recovered).
    """
    data = bytes(data)
    if len(data) < FRAME_HEADER_SIZE:
        if data and data[0] != FRAME_MAGIC:
            raise WireError(f"framing desync: expected magic 0x{FRAME_MAGIC:02x}, got 0x{data[0]:02x}")
        raise IncompleteFrameError(f"need {FRAME_HEADER_SIZE - len(data)} more header bytes")
    magic, length = _FRAME_HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise WireError(f"framing desync: expected magic 0x{FRAME_MAGIC:02x}, got 0x{magic:02x}")
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES} (desync?)")
    end = FRAME_HEADER_SIZE + length
    if len(data) < end:
        raise IncompleteFrameError(f"need {end - len(data)} more payload bytes")
    return data[FRAME_HEADER_SIZE:end], data[end:]


class FrameDecoder:
    """Streaming frame reassembly over arbitrary read chunks.

    ``feed(chunk)`` returns every complete frame payload the buffer now
    holds (possibly none); partial frames wait for the next feed. Garbage
    at a frame boundary raises :class:`WireError` — a stream transport
    cannot resynchronize, so the caller should drop the connection.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[bytes]:
        self._buffer += chunk
        frames: list[bytes] = []
        view = bytes(self._buffer)
        while True:
            try:
                payload, view = deframe(view)
            except IncompleteFrameError:
                break
            frames.append(payload)
        self._buffer = bytearray(view)
        return frames
