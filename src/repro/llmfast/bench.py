"""Llmfast benchmark: verdict-plane throughput under duplicate-heavy load.

Three measurements, mirroring the three analyst-side fast lanes:

- **analyzer storm throughput** — the seed expert-referencing round
  (retrieval loop, template render, provider round trip, response parse,
  every time) vs the fast analyst (content-addressed verdict cache +
  vectorized retrieval + compiled prompts) over the same duplicate-heavy
  trace workload, in analyses/second;
- **RAG retrieval alone** — seed ``CellularKnowledgeBase.retrieve`` vs
  the precomputed-term-index :class:`VectorizedRetriever` on the
  identical workload;
- **prompt assembly alone** — seed ``PromptTemplate.render`` vs the
  :class:`CompiledPromptBuilder` single-join path.

Every run re-verifies the equality contracts: verdict *decisions*
(classification, ranked attacks, attribution, remediations) identical
per query, retrieval rankings identical per trace, prompts
byte-identical per trace (with and without snippets).  :func:`violations`
gates a result against the hard speedup floors and the committed
baseline (``BENCH_llmfast.json``).  No CPU gating: every win here is
single-threaded caching/vectorization, so the floors are unconditional.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.llm.analyst import ExpertAnalyst
from repro.llm.client import LlmClient, SimulatedLlmServer
from repro.llm.knowledge import CellularKnowledgeBase
from repro.llm.prompt import PromptTemplate
from repro.llmfast.promptfast import CompiledPromptBuilder
from repro.llmfast.retrieval import VectorizedRetriever
from repro.llmfast.settings import LlmfastSettings
from repro.llmfast.workload import decision_tuple, distinct_traces, duplicate_heavy

# Hard floors from the perf-trajectory acceptance gates (unconditional:
# no parallelism involved, a single-core runner hits them too).
STORM_SPEEDUP_MIN = 5.0
RAG_SPEEDUP_MIN = 3.0
PROMPT_SPEEDUP_MIN = 2.0
# A fresh run may regress this far below the committed baseline's measured
# ratio before we call it a regression (shared-runner noise allowance).
BASELINE_SLACK = 0.5


@dataclass
class LlmfastBenchConfig:
    distinct: int = 16
    analyses: int = 400
    retrievals: int = 2000
    prompts: int = 2000
    model: str = "chatgpt-4o"
    repeats: int = 3  # best-of repeats for every timing loop

    @classmethod
    def quick(cls) -> "LlmfastBenchConfig":
        return cls(distinct=8, analyses=120, retrievals=600, prompts=600, repeats=2)


@dataclass
class LlmfastBenchResult:
    storm: dict = field(default_factory=dict)
    rag: dict = field(default_factory=dict)
    prompt: dict = field(default_factory=dict)
    equality: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "storm": self.storm,
            "rag": self.rag,
            "prompt": self.prompt,
            "equality": self.equality,
            "meta": self.meta,
        }

    def report(self) -> str:
        lines = ["llmfast bench" + (" (quick)" if self.meta.get("quick") else "")]
        s = self.storm
        lines.append(
            f"  analyzer storm: seed {s['seed_aps']:.0f} analyses/s -> cached "
            f"{s['fast_aps']:.0f} analyses/s ({s['speedup']:.2f}x, floor "
            f"{STORM_SPEEDUP_MIN:g}x; {s['distinct']} distinct / "
            f"{s['analyses']} total)"
        )
        r = self.rag
        lines.append(
            f"  RAG retrieval: seed {r['seed_qps']:.0f} q/s -> vectorized "
            f"{r['fast_qps']:.0f} q/s ({r['speedup']:.2f}x, floor "
            f"{RAG_SPEEDUP_MIN:g}x)"
        )
        p = self.prompt
        lines.append(
            f"  prompt assembly: seed {p['seed_qps']:.0f} builds/s -> compiled "
            f"{p['fast_qps']:.0f} builds/s ({p['speedup']:.2f}x, floor "
            f"{PROMPT_SPEEDUP_MIN:g}x)"
        )
        eq = ", ".join(f"{k}={v}" for k, v in self.equality.items())
        lines.append(f"  equality: {eq}")
        return "\n".join(lines)


def _best_of(repeats: int, run: Callable[[], float]) -> float:
    """Best (minimum) measurement across repeats — noise-robust timing."""
    return min(run() for _ in range(repeats))


def _fast_settings() -> LlmfastSettings:
    # The analyst-side lanes; dispatch is xApp-level and not timed here.
    return LlmfastSettings(
        verdict_cache=True, coalesce=True, vectorized_rag=True, compiled_prompts=True
    )


def _bench_storm(cfg: LlmfastBenchConfig, result: LlmfastBenchResult) -> None:
    traces = distinct_traces(cfg.distinct)
    workload = duplicate_heavy(traces, cfg.analyses)

    def seed_analyst() -> ExpertAnalyst:
        return ExpertAnalyst(
            client=LlmClient(server=SimulatedLlmServer(), model=cfg.model),
            use_rag=True,
        )

    def fast_analyst() -> ExpertAnalyst:
        return ExpertAnalyst(
            client=LlmClient(server=SimulatedLlmServer(), model=cfg.model),
            use_rag=True,
            llmfast=_fast_settings(),
        )

    def seed_run() -> float:
        analyst = seed_analyst()
        t0 = time.perf_counter()
        for records in workload:
            analyst.analyze(records)
        return time.perf_counter() - t0

    def fast_run() -> float:
        analyst = fast_analyst()
        t0 = time.perf_counter()
        for records in workload:
            analyst.analyze(records)
        return time.perf_counter() - t0

    seed_run()  # warm-up (allocator, engine caches)
    seed_s = _best_of(cfg.repeats, seed_run)
    fast_run()
    fast_s = _best_of(cfg.repeats, fast_run)
    result.storm = {
        "distinct": cfg.distinct,
        "analyses": cfg.analyses,
        "seed_s": seed_s,
        "fast_s": fast_s,
        "seed_aps": cfg.analyses / seed_s,
        "fast_aps": cfg.analyses / fast_s,
        "speedup": seed_s / fast_s,
    }
    # Decision identity per query (free text may differ on cache hits).
    ref, fast = seed_analyst(), fast_analyst()
    decisions_equal = all(
        decision_tuple(ref.analyze(records).response)
        == decision_tuple(fast.analyze(records).response)
        for records in workload
    )
    result.equality["verdict_decisions_identical"] = bool(decisions_equal)
    result.storm["cache"] = fast.cache_stats


def _bench_rag(cfg: LlmfastBenchConfig, result: LlmfastBenchResult) -> None:
    traces = distinct_traces(cfg.distinct)
    workload = duplicate_heavy(traces, cfg.retrievals)
    knowledge = CellularKnowledgeBase()

    def seed_run() -> float:
        t0 = time.perf_counter()
        for records in workload:
            knowledge.retrieve(records)
        return time.perf_counter() - t0

    def fast_run() -> float:
        retriever = VectorizedRetriever(knowledge)
        t0 = time.perf_counter()
        for records in workload:
            retriever.retrieve(records)
        return time.perf_counter() - t0

    seed_run()
    seed_s = _best_of(cfg.repeats, seed_run)
    fast_run()
    fast_s = _best_of(cfg.repeats, fast_run)
    result.rag = {
        "retrievals": cfg.retrievals,
        "seed_s": seed_s,
        "fast_s": fast_s,
        "seed_qps": cfg.retrievals / seed_s,
        "fast_qps": cfg.retrievals / fast_s,
        "speedup": seed_s / fast_s,
    }
    retriever = VectorizedRetriever(knowledge)
    result.equality["rag_rankings_identical"] = all(
        retriever.retrieve(records, top_k=k) == knowledge.retrieve(records, top_k=k)
        for records in traces
        for k in (1, 2, 4)
    )


def _bench_prompt(cfg: LlmfastBenchConfig, result: LlmfastBenchResult) -> None:
    traces = distinct_traces(cfg.distinct)
    workload = duplicate_heavy(traces, cfg.prompts)
    knowledge = CellularKnowledgeBase()

    def seed_run() -> float:
        t0 = time.perf_counter()
        for records in workload:
            PromptTemplate().render(records)
        return time.perf_counter() - t0

    def fast_run() -> float:
        builder = CompiledPromptBuilder()
        t0 = time.perf_counter()
        for records in workload:
            builder.render(records)
        return time.perf_counter() - t0

    seed_run()
    seed_s = _best_of(cfg.repeats, seed_run)
    fast_run()
    fast_s = _best_of(cfg.repeats, fast_run)
    result.prompt = {
        "prompts": cfg.prompts,
        "seed_s": seed_s,
        "fast_s": fast_s,
        "seed_qps": cfg.prompts / seed_s,
        "fast_qps": cfg.prompts / fast_s,
        "speedup": seed_s / fast_s,
    }
    builder = CompiledPromptBuilder()
    byte_equal = True
    for records in traces:
        snippets = knowledge.retrieve(records)
        template = PromptTemplate()
        if builder.render(records) != template.render(records):
            byte_equal = False
        template = PromptTemplate()
        template.retrieved_snippets = list(snippets)
        if snippets and builder.render(records, snippets) != template.render(records):
            byte_equal = False
    result.equality["prompts_byte_identical"] = byte_equal


def run_bench(
    config: Optional[LlmfastBenchConfig] = None, quick: bool = False
) -> LlmfastBenchResult:
    """Run all three measurements plus the equality re-verification."""
    cfg = config or (LlmfastBenchConfig.quick() if quick else LlmfastBenchConfig())
    result = LlmfastBenchResult()
    result.meta = {
        "quick": quick,
        "distinct": cfg.distinct,
        "analyses": cfg.analyses,
        "retrievals": cfg.retrievals,
        "prompts": cfg.prompts,
        "model": cfg.model,
    }
    _bench_storm(cfg, result)
    _bench_rag(cfg, result)
    _bench_prompt(cfg, result)
    return result


def violations(result: LlmfastBenchResult, baseline: Optional[dict] = None) -> list:
    """Gate a result against the hard floors and the committed baseline."""
    out: list[str] = []
    for key, ok in result.equality.items():
        if not ok:
            out.append(f"equality contract broken: {key}")
    checks = (
        ("storm", result.storm.get("speedup", 0.0), STORM_SPEEDUP_MIN),
        ("rag", result.rag.get("speedup", 0.0), RAG_SPEEDUP_MIN),
        ("prompt", result.prompt.get("speedup", 0.0), PROMPT_SPEEDUP_MIN),
    )
    for name, speedup, floor in checks:
        if speedup < floor:
            out.append(f"{name} speedup {speedup:.2f}x below floor {floor:g}x")
    if baseline:
        for name, speedup, _ in checks:
            committed = baseline.get(name, {})
            committed = (
                committed.get("speedup") if isinstance(committed, dict) else None
            )
            if isinstance(committed, (int, float)) and speedup < committed * BASELINE_SLACK:
                out.append(
                    f"{name}.speedup {speedup:.2f}x regressed below "
                    f"{BASELINE_SLACK:.0%} of committed baseline {committed:.2f}x"
                )
    return out


def load_baseline(path) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def save_result(result: LlmfastBenchResult, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
