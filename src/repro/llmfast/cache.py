"""Content-addressed verdict cache (repro.llmfast).

The expensive part of one expert-referencing round is everything behind
the provider boundary: prompt rendering, the simulated model's
regex-parse of the data section, the shared analysis engine run on the
backend side, response text generation, and response parsing — plus, in
the live xApp, the provider's simulated WAN latency.  During an incident
storm the anomalies arriving are near-duplicates (the same attack
flagged over and over), so most of that work resolves to the same
*decision*.

:func:`trace_signature` canonicalizes exactly the decision-relevant
content of a query:

- the model and RAG on/off (which capability profile answers, and
  whether rag-unlock applies);
- the trace's message sequence (what the backend parses out of the
  prompt);
- the matched-signature sequence, confidence-ordered, from a local run
  of the *same* shared :class:`AnalysisEngine` the simulated backends
  use (what the model perceives);
- the retrieved snippet tuple when RAG is on (which knowledge-gap
  unlocks are in the prompt).

Two queries with equal signatures are guaranteed to produce the same
verdict decision — classification, top-attack list, attribution,
remediation set, human-review escalation — because those outputs are
pure functions of the signature components.  Only free-text phrasing
(style seed, evidence timestamps) can differ, and the cache trades that
for skipping the round trip entirely.

A content memo in front (:class:`SignatureInterner`) keys on the exact
record tuple, so byte-identical repeat traces skip even the local engine
pass.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from hashlib import sha256
from typing import Optional

from repro.llm.knowledge import AnalysisEngine
from repro.llm.response import AnalysisResponse


@dataclass(frozen=True)
class TraceSignature:
    """Canonical decision identity of one expert-referencing query."""

    digest: bytes
    # Introspection fields (not part of the cache key semantics beyond
    # being inputs to the digest).
    n_records: int
    matched: tuple

    def __hash__(self) -> int:
        return hash(self.digest)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TraceSignature) and self.digest == other.digest


def trace_signature(
    records,
    matches,
    model: str,
    use_rag: bool,
    snippets: tuple = (),
) -> TraceSignature:
    """Digest the decision-relevant content of a query."""
    hasher = sha256()
    hasher.update(model.encode("utf-8"))
    hasher.update(b"\x1e1" if use_rag else b"\x1e0")
    for record in records:
        hasher.update(b"\x1f")
        hasher.update(record.msg.encode("utf-8"))
    matched = tuple(m.signature for m in matches)
    for signature in matched:
        hasher.update(b"\x1d")
        hasher.update(signature.encode("utf-8"))
    if use_rag:
        for snippet in snippets:
            hasher.update(b"\x1c")
            hasher.update(snippet.encode("utf-8"))
    return TraceSignature(
        digest=hasher.digest(), n_records=len(records), matched=matched
    )


class SignatureInterner:
    """Memoizes trace signatures for byte-identical repeat traces.

    Keyed on the exact record tuple (``MobiFlowRecord`` is frozen and
    hashable), so an exactly repeated trace — the duplicate-heavy storm
    case — skips the local engine pass; near-duplicates (same messages,
    shifted timestamps) miss here but still coalesce on the signature.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._memo: dict[tuple, TraceSignature] = {}
        self.hits = 0
        self.misses = 0

    def get(self, records_key: tuple) -> Optional[TraceSignature]:
        found = self._memo.get(records_key)
        if found is not None:
            self.hits += 1
        else:
            self.misses += 1
        return found

    def put(self, records_key: tuple, signature: TraceSignature) -> None:
        if len(self._memo) >= self.capacity:
            self._memo.clear()
        self._memo[records_key] = signature


@dataclass
class CachedVerdict:
    """The reusable payload of one completed analysis."""

    response: AnalysisResponse
    prompt: str
    model: str


class VerdictCache:
    """LRU cache of completed analyses keyed on trace signatures."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[TraceSignature, CachedVerdict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, signature: TraceSignature) -> Optional[CachedVerdict]:
        entry = self._entries.get(signature)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(signature)
        self.hits += 1
        return entry

    def put(self, signature: TraceSignature, entry: CachedVerdict) -> None:
        if signature in self._entries:
            self._entries.move_to_end(signature)
        self._entries[signature] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


__all__ = [
    "AnalysisEngine",
    "CachedVerdict",
    "SignatureInterner",
    "TraceSignature",
    "VerdictCache",
    "trace_signature",
]
