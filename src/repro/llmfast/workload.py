"""Synthetic verdict-plane workloads for the llmfast bench and tests.

The storm the fast path targets is *duplicate-heavy*: an incident flood
re-raises the same handful of trace shapes (the same attack against many
sessions, or the same session re-flagged), so most queries share a
canonical trace signature.  :func:`distinct_traces` builds a deterministic
set of structurally distinct telemetry sequences (benign, signaling
storm, null cipher, identity exposure, replay — plus length-varied
benigns); :func:`duplicate_heavy` tiles them into a workload where each
distinct shape recurs many times in a deterministic shuffle.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.telemetry.mobiflow import MobiFlowRecord


def _rec(t: float, msg: str, session: int = 1, **kwargs) -> MobiFlowRecord:
    defaults = dict(protocol="RRC", direction="UL", rnti=0x100 + session)
    defaults.update(kwargs)
    return MobiFlowRecord(timestamp=t, msg=msg, session_id=session, **defaults)


def benign_trace(session: int = 1, t0: float = 0.0, pad: int = 0) -> list:
    """A clean registration; ``pad`` extra identity round trips vary the
    msg sequence (and therefore the trace signature) without tripping any
    attack signature."""
    seq: list = [
        ("RRCSetupRequest", dict(establishment_cause="mo-Signalling")),
        ("RRCSetup", dict(direction="DL")),
        ("RRCSetupComplete", {}),
        ("RegistrationRequest", dict(suci="suci-001-01-abcdef")),
        ("AuthenticationRequest", dict(direction="DL")),
        ("AuthenticationResponse", {}),
        ("NASSecurityModeCommand", dict(direction="DL", cipher_alg=2, integrity_alg=2)),
        ("NASSecurityModeComplete", {}),
    ]
    for _ in range(pad):
        seq.append(("UECapabilityEnquiry", dict(direction="DL")))
        seq.append(("UECapabilityInformation", {}))
    seq += [
        ("RegistrationAccept", dict(direction="DL", s_tmsi=0xAB00 + session)),
        ("RegistrationComplete", {}),
        ("RRCRelease", dict(direction="DL")),
    ]
    return [
        _rec(t0 + 0.05 * i, msg, session=session, **kw)
        for i, (msg, kw) in enumerate(seq)
    ]


def storm_trace(connections: int = 6, t0: float = 0.0) -> list:
    """An RRC signaling storm: many setups, nothing completes."""
    records: list = []
    for i in range(connections):
        session = 10 + i
        records += [
            _rec(
                t0 + 0.15 * i,
                "RRCSetupRequest",
                session=session,
                establishment_cause="mo-Data",
            ),
            _rec(t0 + 0.15 * i + 0.02, "RRCSetup", session=session, direction="DL"),
        ]
    return records


def null_cipher_trace(session: int = 3, t0: float = 0.0) -> list:
    records = benign_trace(session=session, t0=t0)
    return [
        MobiFlowRecord(
            **{
                **r.to_dict(),
                **(
                    dict(cipher_alg=0, integrity_alg=0)
                    if r.msg == "NASSecurityModeCommand"
                    else {}
                ),
            }
        )
        for r in records
    ]


def identity_exposure_trace(session: int = 4, t0: float = 0.0) -> list:
    records = benign_trace(session=session, t0=t0)
    out = []
    for r in records:
        if r.msg == "RegistrationRequest":
            fields = r.to_dict()
            fields["supi"] = "imsi-001010123456789"
            out.append(MobiFlowRecord(**fields))
        else:
            out.append(r)
    return out


def replay_trace(session: int = 5, t0: float = 0.0, replays: int = 4) -> list:
    """The same S-TMSI re-raised in rapid succession (paging replay)."""
    records: list = []
    for i in range(replays):
        records += [
            _rec(
                t0 + 0.1 * i,
                "RRCSetupRequest",
                session=session,
                s_tmsi=0xBEEF,
                establishment_cause="mt-Access",
            ),
            _rec(t0 + 0.1 * i + 0.02, "RRCSetup", session=session, direction="DL"),
        ]
    return records


def distinct_traces(count: int = 16) -> list:
    """``count`` structurally distinct traces (distinct msg sequences)."""
    base = [
        benign_trace(session=1),
        storm_trace(connections=6),
        null_cipher_trace(session=3),
        identity_exposure_trace(session=4),
        replay_trace(session=5),
    ]
    out = list(base[:count])
    pad = 1
    while len(out) < count:
        # Length-varied benigns and storms round out the set.
        if pad % 2:
            out.append(benign_trace(session=20 + pad, pad=pad))
        else:
            out.append(storm_trace(connections=6 + pad))
        pad += 1
    return out


def duplicate_heavy(
    traces: list, total: int, seed: int = 11, rng: Optional[random.Random] = None
) -> list:
    """Tile ``traces`` to ``total`` queries in a deterministic shuffle."""
    rng = rng or random.Random(seed)
    workload = [traces[i % len(traces)] for i in range(total)]
    rng.shuffle(workload)
    return workload


def decision_tuple(response) -> tuple:
    """The verdict *decision* — the part the fast path must keep identical.

    Free text (explanation style, evidence timestamps) may differ between
    a cached and a fresh response; the classification, ranked attacks,
    attribution, and remediation set may not.
    """
    return (
        response.is_anomalous,
        tuple(name for name, _ in response.top_attacks),
        response.attribution,
        tuple(response.remediations),
    )
