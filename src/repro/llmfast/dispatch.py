"""Storm-safe dispatch queue (repro.llmfast).

The seed analyzer fires one provider request per anomaly the moment it
arrives: under an incident flood every anomaly that survives the
per-session cooldown opens its own concurrent round trip.  A real
provider (and the paper's closed-loop budget) cannot absorb that.

:class:`StormDispatcher` is the pure queueing core the analyzer xApp
drives: at most ``max_inflight`` requests are outstanding at once;
the backlog is a severity-ordered priority queue (highest severity
dispatches first); once the backlog exceeds ``queue_capacity`` the
*lowest-priority* request among the backlog and the newcomer is shed —
counted, never silent.  The xApp owns scheduling and the ledger
invariant (``offered == analyzed + coalesced + cache_hits + shed +
pending``); this class owns only the mechanics, which keeps it unit-
testable without a simulator.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional


class StormDispatcher:
    """Bounded-concurrency, severity-priority request queue."""

    def __init__(self, max_inflight: int = 4, queue_capacity: int = 256) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.max_inflight = max_inflight
        self.queue_capacity = queue_capacity
        self.inflight = 0
        self.shed = 0
        self.dispatched = 0
        self._seq = 0
        # Min-heap on (-priority, seq): highest priority pops first,
        # FIFO within equal priorities.
        self._heap: list[tuple[float, int, Any]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def backlog(self) -> int:
        return len(self._heap)

    def submit(self, priority: float, item: Any) -> tuple[str, Optional[Any]]:
        """Offer one request.

        Returns ``("dispatch", item)`` when the caller should fire the
        request now (an in-flight slot was free), ``("queued", None)``
        when it was enqueued, or ``("shed", victim)`` when capacity was
        exhausted and ``victim`` (the lowest-priority request — possibly
        the newcomer itself) was dropped.
        """
        if self.inflight < self.max_inflight:
            self.inflight += 1
            self.dispatched += 1
            return "dispatch", item
        if len(self._heap) >= self.queue_capacity:
            victim = self._shed_lowest(priority, item)
            self.shed += 1
            if victim is item:
                return "shed", victim
            # The newcomer displaced a queued request; enqueue it.
            self._push(priority, item)
            return "shed", victim
        self._push(priority, item)
        return "queued", None

    def complete(self) -> Optional[Any]:
        """Mark one in-flight request finished; return the next to fire.

        When the backlog is non-empty the highest-priority request is
        returned and *stays counted as in-flight* (the caller fires it
        immediately); otherwise the slot is released.
        """
        if self.inflight <= 0:
            raise RuntimeError("complete() without a matching dispatch")
        if self._heap:
            _, _, item = heapq.heappop(self._heap)
            self.dispatched += 1
            return item
        self.inflight -= 1
        return None

    def _push(self, priority: float, item: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (-priority, self._seq, item))

    def _shed_lowest(self, priority: float, item: Any) -> Any:
        """Drop the lowest-priority request among backlog + newcomer."""
        if not self._heap:
            return item
        # max() over the heap list: the entry with the largest
        # (-priority, seq) is the lowest-priority, newest request.
        worst_index = max(range(len(self._heap)), key=lambda i: self._heap[i][:2])
        worst = self._heap[worst_index]
        if -worst[0] >= priority:
            # Every queued request outranks (or ties) the newcomer.
            return item
        self._heap[worst_index] = self._heap[-1]
        self._heap.pop()
        heapq.heapify(self._heap)
        return worst[2]

    def stats(self) -> dict:
        return {
            "inflight": self.inflight,
            "backlog": len(self._heap),
            "dispatched": self.dispatched,
            "shed": self.shed,
            "max_inflight": self.max_inflight,
            "queue_capacity": self.queue_capacity,
        }
