"""repro.llmfast — the verdict-plane fast path (PR 10).

After the ingest (repro.genfast), scoring (repro.hotpath /
repro.megabatch), and training (repro.trainfast) fast paths, the LLM
analyzer xApp — the paper's headline *explainable* half of the loop
(§3.3, Figure 3) — was the last stage paying full price per anomaly:
one prompt build, one O(articles) RAG retrieval loop, one serial provider
round trip, and one SDL write each.  This package adds, behind
``XsecConfig.llmfast`` flags whose defaults keep the seed path
bit-identical:

- a **content-addressed verdict cache** + **in-flight coalescing**
  (:mod:`.cache`): near-duplicate anomaly bursts resolve without a
  provider round trip, and concurrent identical queries join one pending
  request;
- **vectorized RAG retrieval** (:mod:`.retrieval`): a precomputed term
  index over ``KNOWLEDGE_ARTICLES`` replaces the per-query substring
  loop, seed-ranking identical;
- **compiled prompt assembly** (:mod:`.promptfast`): cached static
  segments, interned record lines, single-join construction,
  byte-identical to ``PromptTemplate.render``;
- a **storm-safe dispatch queue** (:mod:`.dispatch`): bounded provider
  concurrency, severity-priority backlog, counted never-silent shedding,
  and batched verdict persistence via ``SharedDataLayer.set_many`` —
  with the ledger invariant ``offered == analyzed + coalesced +
  cache_hits + shed + pending``.

``python -m repro llmfast-bench`` gates the measured speedups against
hard floors and the committed ``BENCH_llmfast.json`` baseline.
"""

from repro.llmfast.cache import (
    CachedVerdict,
    SignatureInterner,
    TraceSignature,
    VerdictCache,
    trace_signature,
)
from repro.llmfast.dispatch import StormDispatcher
from repro.llmfast.promptfast import CompiledPromptBuilder
from repro.llmfast.retrieval import VectorizedRetriever, trace_terms
from repro.llmfast.settings import LlmfastSettings

__all__ = [
    "CachedVerdict",
    "CompiledPromptBuilder",
    "LlmfastSettings",
    "SignatureInterner",
    "StormDispatcher",
    "TraceSignature",
    "VectorizedRetriever",
    "VerdictCache",
    "trace_signature",
    "trace_terms",
]
