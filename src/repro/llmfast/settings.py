"""Configuration for the repro.llmfast verdict-plane fast path.

All flags default to the seed behavior (off).  As with the other
fast-path subsystems, the enabled paths are *contracted* against the
seed: the vectorized RAG retriever returns the exact seed ranking, the
compiled prompt builder produces byte-identical prompt text, and the
verdict cache / coalescer / dispatcher never change a verdict *decision*
(classification, top attacks, attribution, remediation, human-review
escalation) — only how fast, and at what provider cost, verdicts are
produced.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LlmfastSettings:
    """Flags for the LLM analyzer fast path.

    verdict_cache
        Content-addressed verdict cache keyed on a canonical trace
        signature (message sequence, matched-signature set, model, RAG
        snippet set).  Near-duplicate anomaly bursts — the common case
        in BTS-DoS / signaling-storm captures — resolve without a
        provider round trip and reuse the cached analysis.

    coalesce
        In-flight request coalescing in the analyzer xApp: while a query
        for one trace signature is waiting on the provider, further
        anomalies with the same signature join the pending request and
        the verdict fans out to every waiter on completion.

    vectorized_rag
        Precomputed term-index retrieval over ``KNOWLEDGE_ARTICLES``:
        one indexed pass per trace instead of the O(terms x articles)
        substring loop in ``CellularKnowledgeBase.retrieve``.  Returns
        the exact seed ranking.

    compiled_prompts
        Cached static prefix segments, interned per-record line
        rendering, and single-join construction in the prompt builder.
        Byte-identical to ``PromptTemplate.render``.

    dispatch
        Storm-safe dispatch queue in the analyzer xApp: at most
        ``max_inflight`` concurrent provider requests, severity-priority
        ordering for the backlog, counted never-silent load shedding
        once the backlog exceeds ``queue_capacity``, and batched verdict
        persistence through ``SharedDataLayer.set_many``.  The ledger
        invariant ``offered == analyzed + coalesced + cache_hits + shed
        + pending`` always holds.
    """

    verdict_cache: bool = False
    coalesce: bool = False
    vectorized_rag: bool = False
    compiled_prompts: bool = False
    dispatch: bool = False

    # Verdict-cache capacity (completed trace signatures kept, LRU).
    cache_capacity: int = 4096
    # Interned prompt lines kept by the compiled builder before it resets.
    prompt_cache_capacity: int = 65536
    # Dispatch: concurrent in-flight provider requests.
    max_inflight: int = 4
    # Dispatch: queued (not yet in-flight) requests kept before shedding.
    queue_capacity: int = 256

    def __post_init__(self) -> None:
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.prompt_cache_capacity < 1:
            raise ValueError("prompt_cache_capacity must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")

    @property
    def fast_submit_enabled(self) -> bool:
        """The analyzer xApp routes anomalies through the fast submit path."""
        return self.verdict_cache or self.coalesce or self.dispatch

    @property
    def any_enabled(self) -> bool:
        return (
            self.verdict_cache
            or self.coalesce
            or self.vectorized_rag
            or self.compiled_prompts
            or self.dispatch
        )

    @classmethod
    def all_on(cls) -> "LlmfastSettings":
        """Every fast-path flag enabled (benches, tests)."""
        return cls(
            verdict_cache=True,
            coalesce=True,
            vectorized_rag=True,
            compiled_prompts=True,
            dispatch=True,
        )
