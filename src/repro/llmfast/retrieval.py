"""Vectorized RAG retrieval (repro.llmfast).

The seed :meth:`CellularKnowledgeBase.retrieve` scores a trace against
every article with a Python double loop: for each article, substring-test
every trace term against the article's combined snippet+explanation text.
That is O(terms x articles) substring searches per query, paid again for
every anomaly in a burst.

:class:`VectorizedRetriever` precomputes a term index at construction:
for every term in the known vocabulary (all registered RRC/NAS message
names plus the special marker terms the seed derives from record state),
a per-article membership row.  Scoring a trace is then one indexed
accumulation over the rows of the terms actually present — no substring
search on the hot path.  Terms outside the precomputed vocabulary are
resolved with the seed's substring test once and memoized.

Two memo layers sit on top, sized for anomaly storms where near-identical
traces repeat:

- a term-set memo: traces with the same derived term set (the common
  case for duplicate bursts) reuse the finished ranking;
- the row memo above, so a cold term is only ever substring-tested once.

The contract — enforced in ``tests/test_llmfast.py`` and re-verified by
the bench — is *exact ranking equality* with the seed loop, including the
``(-score, signature)`` tie-break and the ``score > 0`` cutoff.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.llm.knowledge import CellularKnowledgeBase
from repro.telemetry.mobiflow import MobiFlowRecord

# Marker terms the seed injects from record state (not message names).
_STATE_TERMS = ("nea0", "nia0", "null", "suci", "supi", "plaintext", "s-tmsi")


def trace_terms(records: Iterable[MobiFlowRecord]) -> frozenset:
    """The seed's term derivation, shared verbatim by both retrievers."""
    terms = set()
    for record in records:
        terms.add(record.msg.lower())
        if record.cipher_alg == 0 or record.integrity_alg == 0:
            terms.update(("nea0", "nia0", "null"))
        if record.exposes_permanent_identity():
            terms.update(("suci", "supi", "plaintext"))
        if record.s_tmsi is not None:
            terms.add("s-tmsi")
    return frozenset(terms)


class VectorizedRetriever:
    """Term-indexed article scoring, seed-ranking identical."""

    def __init__(
        self,
        knowledge: Optional[CellularKnowledgeBase] = None,
        result_memo_capacity: int = 4096,
    ) -> None:
        self.knowledge = knowledge or CellularKnowledgeBase()
        articles = list(self.knowledge.articles.values())
        # Seed iteration order (dict order) feeds the same sort key, so
        # ranking ties resolve identically.
        self._signatures = [article.signature for article in articles]
        self._snippets = [article.procedure_snippet for article in articles]
        self._texts = [
            (article.procedure_snippet + " " + article.explanation).lower()
            for article in articles
        ]
        self._n = len(articles)
        self._rows: dict[str, np.ndarray] = {}
        self._result_memo: dict[tuple, list[str]] = {}
        self._result_memo_capacity = result_memo_capacity
        self.queries = 0
        self.memo_hits = 0
        # Precompute the vocabulary: every registered message name (what
        # record.msg.lower() can produce for real traffic) + state terms.
        from repro.ran.messages import Message

        for name in Message.registered_names():
            self._row(name.lower())
        for term in _STATE_TERMS:
            self._row(term)

    def _row(self, term: str) -> np.ndarray:
        row = self._rows.get(term)
        if row is None:
            row = np.fromiter(
                (term in text for text in self._texts), dtype=np.int32, count=self._n
            )
            self._rows[term] = row
        return row

    def retrieve(self, records: list[MobiFlowRecord], top_k: int = 2) -> list[str]:
        """Seed-identical ranking through the precomputed term index."""
        self.queries += 1
        terms = trace_terms(records)
        memo_key = (terms, top_k)
        cached = self._result_memo.get(memo_key)
        if cached is not None:
            self.memo_hits += 1
            return list(cached)
        scores = np.zeros(self._n, dtype=np.int32)
        for term in terms:
            scores += self._row(term)
        ranked = sorted(
            zip(scores.tolist(), self._signatures, self._snippets),
            key=lambda item: (-item[0], item[1]),
        )
        result = [snippet for score, _, snippet in ranked[:top_k] if score > 0]
        if len(self._result_memo) >= self._result_memo_capacity:
            self._result_memo.clear()
        self._result_memo[memo_key] = result
        return list(result)
