"""Compiled prompt assembly (repro.llmfast).

``PromptTemplate.render`` re-pays three costs on every query: the
``str.format`` pass over the full template (re-copying the static
Figure 5 preamble and data descriptions), per-record line formatting
(eleven field formats and a join per telemetry entry), and the RAG
bullet-list rendering.  In the live analyzer the same records appear in
many consecutive prompts — ``context_for`` returns sliding windows over
the shared history — so most of that work is recomputation.

:class:`CompiledPromptBuilder` splits the template once at construction
into static segments (so assembly is a single ``str.join``), interns
rendered record lines keyed on the (frozen, hashable) record itself, and
memoizes the rendered RAG block per snippet tuple.  The contract —
enforced in ``tests/test_llmfast.py`` and re-verified by the bench — is
byte-identical output to ``PromptTemplate.render`` for every input.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.llm.prompt import DATA_DESCRIPTIONS, TEMPLATE, format_record
from repro.telemetry.mobiflow import MobiFlowRecord

_RAG_HEADER = "\n\nRelevant 3GPP protocol knowledge for reference:\n"


class CompiledPromptBuilder:
    """Byte-identical ``PromptTemplate.render`` with interned segments."""

    def __init__(
        self,
        data_descriptions: str = DATA_DESCRIPTIONS,
        line_cache_capacity: int = 65536,
    ) -> None:
        # Split the formatted template around sentinel characters that
        # cannot appear in the template text: whatever str.format would
        # have produced, the joined segments reproduce byte-for-byte.
        probe = TEMPLATE.format(
            data_descriptions=data_descriptions, data="\x00", extra="\x01"
        )
        prefix, rest = probe.split("\x00")
        middle, suffix = rest.split("\x01")
        self._prefix = prefix
        self._middle = middle
        self._suffix = suffix
        self._line_cache: dict[MobiFlowRecord, str] = {}
        self._line_cache_capacity = line_cache_capacity
        self._extra_cache: dict[tuple, str] = {}
        self.renders = 0
        self.line_cache_hits = 0

    def _line(self, record: MobiFlowRecord) -> str:
        line = self._line_cache.get(record)
        if line is None:
            if len(self._line_cache) >= self._line_cache_capacity:
                self._line_cache.clear()
            line = self._line_cache[record] = format_record(record)
        else:
            self.line_cache_hits += 1
        return line

    def _extra(self, snippets: tuple) -> str:
        extra = self._extra_cache.get(snippets)
        if extra is None:
            if len(self._extra_cache) >= 1024:
                self._extra_cache.clear()
            extra = self._extra_cache[snippets] = _RAG_HEADER + "\n".join(
                f"- {snippet}" for snippet in snippets
            )
        return extra

    def render(
        self,
        records: Iterable[MobiFlowRecord],
        retrieved_snippets: Optional[list] = None,
    ) -> str:
        self.renders += 1
        line = self._line
        data = "\n".join([line(record) for record in records])
        parts = [self._prefix, data, self._middle]
        if retrieved_snippets:
            parts.append(self._extra(tuple(retrieved_snippets)))
        if self._suffix:
            parts.append(self._suffix)
        return "".join(parts)
