"""The paper's acknowledged blind spots (§5, Limitations), reproduced.

"As a defense framework deployed on the network side, MobiWatch faces
challenges in handling certain types of cellular threats. These include
downlink attacks that drop protocol messages and rogue base stations that
directly communicate with user devices."

Both are implemented so the limitation is *testable*:

- :class:`DownlinkMessageDropAttack` — a MiTM silently drops downlink
  protocol messages toward the victim. Network-side telemetry contains no
  forged or out-of-order entries — only a session that goes quiet — so the
  knowledge-based analysts cannot name an attack (at best the generic
  truncation anomaly fires).
- :class:`RogueBaseStationAttack` — a fake gNB lures the victim onto its
  own radio. The legitimate network's telemetry shows *nothing at all*
  (the victim simply never attaches), making the attack invisible to any
  network-side monitor.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import Attack
from repro.ran.messages import Message
from repro.ran.network import FiveGNetwork
from repro.ran.rrc import RrcDlInformationTransfer
from repro.ran.ue import UserEquipment

if False:  # pragma: no cover - typing only
    from repro.telemetry.mobiflow import MobiFlowRecord


class DownlinkMessageDropAttack(Attack):
    """Silently drop downlink NAS-bearing messages toward the victim.

    The victim's registration stalls (it never sees the authentication
    challenge), the CU's inactivity timer eventually releases it, and it
    retries. Telemetry-wise this is indistinguishable from radio loss.
    """

    name = "downlink_message_drop"
    description = "MiTM drops downlink protocol messages; victim sessions stall"
    citation = "paper §5 (Limitations): downlink attacks that drop protocol messages"

    def __init__(
        self,
        net: FiveGNetwork,
        victim: UserEquipment,
        start_time: float = 0.0,
        duration_s: float = 20.0,
    ) -> None:
        super().__init__(net, start_time)
        self.victim = victim
        self.duration_s = duration_s
        self.messages_dropped = 0
        self._victim_rntis: set[int] = set()
        self._installed = False

    def _launch(self) -> None:
        self._open_window()
        self.net.channel.add_bind_listener(self._on_bind)
        if self.victim.rnti is not None:
            self._victim_rntis.add(self.victim.rnti)
        self.net.channel.add_downlink_interceptor(self._drop)
        self._installed = True
        self.net.sim.schedule(self.duration_s, self._stop)

    def _on_bind(self, rnti: int, ue) -> None:
        if ue is self.victim:
            self._victim_rntis.add(rnti)

    def _stop(self) -> None:
        if self._installed:
            self.net.channel.remove_downlink_interceptor(self._drop)
            self._installed = False
        self._close_window()

    def _drop(self, rnti: int, message: Message) -> Optional[Message]:
        if rnti in self._victim_rntis and isinstance(message, RrcDlInformationTransfer):
            self.messages_dropped += 1
            return None
        return message

    def is_malicious(self, record) -> bool:
        """Network-side ground truth is empty by construction.

        The attack never *adds* an entry to the telemetry; the malicious
        act (an over-the-air drop) happens after the capture point. This
        is precisely why the paper lists it as a limitation.
        """
        return False


class RogueBaseStationAttack(Attack):
    """A fake gNB captures the victim before it reaches the real network.

    Modeled as an uplink interceptor that swallows the victim's initial
    access attempts — from the legitimate network's viewpoint the victim
    simply never shows up, which is exactly the visibility gap the paper
    describes.
    """

    name = "rogue_base_station"
    description = "fake gNB lures the victim; the real network sees nothing"
    citation = "paper §5 (Limitations): rogue base stations"

    def __init__(
        self,
        net: FiveGNetwork,
        victim: UserEquipment,
        start_time: float = 0.0,
        duration_s: float = 20.0,
    ) -> None:
        super().__init__(net, start_time)
        self.victim = victim
        self.duration_s = duration_s
        self.captured_messages = 0
        self._installed = False

    def _launch(self) -> None:
        self._open_window()
        self.net.channel.add_uplink_interceptor(self._capture)
        self._installed = True
        self.net.sim.schedule(self.duration_s, self._stop)

    def _stop(self) -> None:
        if self._installed:
            self.net.channel.remove_uplink_interceptor(self._capture)
            self._installed = False
        self._close_window()

    def _capture(self, ue, rnti, message) -> Optional[Message]:
        if ue is self.victim:
            # The rogue cell's stronger signal wins the victim's uplink.
            self.captured_messages += 1
            return None
        return message

    def is_malicious(self, record) -> bool:
        return False  # the legitimate network's telemetry never sees it
