"""Blind DoS — victim S-TMSI replay (Kim et al., S&P'19).

The attacker sniffs a victim's 5G-S-TMSI (e.g. from paging) and repeatedly
opens RRC connections claiming that identity. The network, believing the UE
re-accessed, tears down the victim's legitimate connection each time —
denial of service without ever touching the victim's radio. The telemetry
signature is the *same temporary identity replayed across many short
sessions*, the "replayed TMSI numbers in different UE sessions" relation the
paper notes some LLMs can extract (§4.2).
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import Attack, RogueUe
from repro.ran.nas import AuthenticationRequest, IdentityRequest, ServiceRequest
from repro.ran.network import FiveGNetwork
from repro.ran.rrc import RrcSetup, RrcSetupComplete, RrcSetupRequest, RrcState
from repro.ran.ue import T300_S, UeProfile, UserEquipment

ATTACKER_PROFILE = UeProfile(
    name="blind_dos_attacker",
    proc_delay_min_s=0.004,
    proc_delay_max_s=0.012,
    deregister_prob=0.0,
)


class TmsiReplayUe(RogueUe):
    """Rogue UE replaying a sniffed S-TMSI on every access."""

    victim_s_tmsi: int = 0

    def start_replays(self, replays: int, interval_s: float) -> None:
        self._remaining = replays
        self._interval_s = interval_s
        self._next_replay()

    def _next_replay(self) -> None:
        if self._remaining <= 0:
            return
        self._remaining -= 1
        if self.rrc_state is not RrcState.IDLE:
            self.abandon_connection()
        self.sessions_started += 1
        self._t300_retries = 0
        self._send_setup_request()

    def _send_setup_request(self) -> None:
        request = RrcSetupRequest(
            ue_identity=self.victim_s_tmsi,
            identity_is_tmsi=True,
        )
        self.channel.uplink(self, None, request)
        self._t300 = self.schedule(T300_S, self._on_t300, name=f"{self.name}.t300")

    def _on_RrcSetup(self, rnti: int, message: RrcSetup) -> None:
        if self.rrc_state is RrcState.CONNECTED:
            return
        self._cancel_t300()
        self.rrc_state = RrcState.CONNECTED
        self.rnti = rnti
        service_request = ServiceRequest(s_tmsi=self.victim_s_tmsi)
        complete = RrcSetupComplete(nas_pdu=service_request.to_wire())
        self.schedule(self._proc_delay(), lambda: self.send_uplink_rrc(complete))

    def _on_nas_AuthenticationRequest(self, nas: AuthenticationRequest) -> None:
        # The damage (victim release) is done; bail and replay again.
        self._finish_replay()

    def _on_nas_IdentityRequest(self, nas: IdentityRequest) -> None:
        # Network could not resolve the TMSI; attacker cannot answer anyway.
        self._finish_replay()

    def _finish_replay(self) -> None:
        self.abandon_connection()
        jitter = self.rng.uniform(0.8, 1.2)
        self.schedule(self._interval_s * jitter, self._next_replay)

    def _on_t300(self) -> None:
        if self.rrc_state is RrcState.IDLE:
            self._finish_replay()


class BlindDosAttack(Attack):
    """Repeatedly hijack a victim's temporary identity to drop it offline."""

    name = "blind_dos"
    description = "S-TMSI replay forcing repeated release of the victim's connection"
    citation = "[38] Kim et al., Touching the Untouchables, IEEE S&P 2019"

    # How long to keep waiting for the victim to obtain an S-TMSI.
    VICTIM_POLL_S = 0.25
    VICTIM_POLL_LIMIT = 120

    def __init__(
        self,
        net: FiveGNetwork,
        victim: UserEquipment,
        start_time: float = 0.0,
        replays: int = 8,
        interval_s: float = 2.0,
    ) -> None:
        super().__init__(net, start_time)
        self.victim = victim
        self.replays = replays
        self.interval_s = interval_s
        self.rogue: Optional[TmsiReplayUe] = None
        self._polls = 0

    def _launch(self) -> None:
        if self.victim.s_tmsi is None:
            # The victim has not registered yet; keep sniffing.
            self._polls += 1
            if self._polls > self.VICTIM_POLL_LIMIT:
                raise RuntimeError("blind DoS victim never obtained an S-TMSI")
            self.net.sim.schedule(self.VICTIM_POLL_S, self._launch)
            return
        self._open_window()
        self.rogue = self.net.add_ue(
            ATTACKER_PROFILE, name=f"{self.name}-rogue", ue_class=TmsiReplayUe
        )
        self.rogue.victim_s_tmsi = self.victim.s_tmsi
        self._track_rogue_ue(self.rogue)
        self.rogue.start_replays(self.replays, self.interval_s)
