"""Null cipher & integrity — security downgrade (5GReasoner, [37]).

A modified UE advertises *only* the null algorithms (NEA0/NIA0) in its
security capabilities. A permissive network (OAI accepts this) completes
registration with no ciphering and no integrity protection — every
subsequent NAS/AS message is attackable. The telemetry signature is a
Security Mode Command whose ``cipher_alg``/``integrity_alg`` state
parameters are 0, a state anomaly rather than a sequence anomaly.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import Attack, RogueUe
from repro.ran.nas import DeregistrationRequest, FiveGmmState
from repro.ran.network import FiveGNetwork
from repro.ran.security import CipherAlg, IntegrityAlg
from repro.ran.ue import UeProfile

NULL_ONLY_PROFILE = UeProfile(
    name="null_cipher_attacker",
    cipher_caps=(CipherAlg.NEA0,),
    integrity_caps=(IntegrityAlg.NIA0,),
    proc_delay_min_s=0.006,
    proc_delay_max_s=0.02,
    deregister_prob=1.0,
)


class NullCipherUe(RogueUe):
    """Rogue UE that bids down to null security and then acts 'normal'."""

    LINGER_S = 0.4

    def _on_nas_RegistrationAccept(self, nas) -> None:  # type: ignore[override]
        super()._on_nas_RegistrationAccept(nas)
        # Registered with null security; linger briefly, then leave cleanly.
        self.schedule(self.LINGER_S, self._leave)

    def _leave(self) -> None:
        if self.fivegmm_state is FiveGmmState.REGISTERED:
            self.fivegmm_state = FiveGmmState.DEREGISTERED_INITIATED
            self.send_uplink_nas(DeregistrationRequest(switch_off=False))


class NullCipherAttack(Attack):
    """Complete a registration with NEA0/NIA0 via capability bidding-down."""

    name = "null_cipher"
    description = "UE bids down to null ciphering and integrity (NEA0/NIA0)"
    citation = "[37] Hussain et al., 5GReasoner, CCS 2019"

    def is_malicious(self, record) -> bool:
        """The malicious entries are the null-security negotiations.

        The rest of the rogue session is byte-for-byte standard registration
        traffic; what the paper's manual labeling marks as malicious is the
        security-mode downgrade itself (a *state* anomaly, §2.2).
        """
        if record.rnti is None or record.rnti not in self.malicious_rntis:
            return False
        return record.cipher_alg == 0 or record.integrity_alg == 0

    def __init__(
        self,
        net: FiveGNetwork,
        start_time: float = 0.0,
        registrations: int = 1,
        interval_s: float = 1.0,
    ) -> None:
        super().__init__(net, start_time)
        self.registrations = registrations
        self.interval_s = interval_s
        self.rogue: Optional[NullCipherUe] = None

    def _launch(self) -> None:
        self._open_window()
        self.rogue = self.net.add_ue(
            NULL_ONLY_PROFILE, name=f"{self.name}-rogue", ue_class=NullCipherUe
        )
        self._track_rogue_ue(self.rogue)
        self._next_registration(self.registrations)

    def _next_registration(self, remaining: int) -> None:
        if remaining <= 0 or self.rogue is None:
            return
        rogue = self.rogue

        def on_end(ue, outcome: str) -> None:
            self.net.sim.schedule(
                self.interval_s, lambda: self._next_registration(remaining - 1)
            )

        rogue.start_session(on_end=on_end)
