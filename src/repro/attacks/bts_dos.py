"""BTS DoS — RRC connection flooding (Kim et al., S&P'19; paper Figure 2b).

A rogue UE establishes a rapid succession of RRC connections, walks each one
up to the authentication stage (forcing the network to allocate an RNTI, a
CU context, and an AMF context plus an authentication vector each time), and
then goes silent. The signature in telemetry is a stream of *uncompleted*
sessions on fresh RNTIs, each ending at AuthenticationRequest — a
multivariate group anomaly across message sequence and identifiers.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import Attack, RogueUe
from repro.ran.nas import AuthenticationRequest
from repro.ran.network import FiveGNetwork
from repro.ran.ue import UeProfile
from repro.ran.rrc import RrcState

ATTACKER_PROFILE = UeProfile(
    name="bts_dos_attacker",
    proc_delay_min_s=0.004,
    proc_delay_max_s=0.012,
    deregister_prob=0.0,
)


class DosUe(RogueUe):
    """Rogue UE that abandons every connection at the authentication stage."""

    def start_flood(self, connections: int, interval_s: float) -> None:
        self._remaining = connections
        self._interval_s = interval_s
        self._next_connection()

    def _next_connection(self) -> None:
        if self._remaining <= 0:
            return
        self._remaining -= 1
        if self.rrc_state is not RrcState.IDLE:
            self.abandon_connection()
        self.start_session()

    def _on_nas_AuthenticationRequest(self, nas: AuthenticationRequest) -> None:
        # Resources are now committed network-side; drop the connection and
        # immediately start the next one.
        self.abandon_connection()
        jitter = self.rng.uniform(0.8, 1.2)
        self.schedule(self._interval_s * jitter, self._next_connection)

    def _on_t300(self) -> None:
        # Flooding attacker does not retry a lost request; it just moves on.
        if self.rrc_state is RrcState.IDLE:
            self.abandon_connection()
            self.schedule(self._interval_s, self._next_connection)


class BtsDosAttack(Attack):
    """Flood the base station with uncompleted RRC connections."""

    name = "bts_dos"
    description = "RRC signaling storm: rapid uncompleted connections from fresh RNTIs"
    citation = "[38] Kim et al., Touching the Untouchables, IEEE S&P 2019"

    def __init__(
        self,
        net: FiveGNetwork,
        start_time: float = 0.0,
        connections: int = 12,
        interval_s: float = 0.08,
    ) -> None:
        super().__init__(net, start_time)
        self.connections = connections
        self.interval_s = interval_s
        self.rogue: Optional[DosUe] = None

    def _launch(self) -> None:
        self._open_window()
        self.rogue = self.net.add_ue(
            ATTACKER_PROFILE, name=f"{self.name}-rogue", ue_class=DosUe
        )
        self._track_rogue_ue(self.rogue)
        self.rogue.start_flood(self.connections, self.interval_s)
