"""Uplink identity extraction — adaptive overshadowing (AdaptOver, [32]).

The attacker overshadows the victim's *uplink* registration, rewriting the
concealed SUCI into the null concealment scheme so the permanent identifier
(IMSI digits) is transmitted in plaintext over the air, where the attacker
captures it. Crucially, the resulting message sequence is **fully standard
compliant** — a null-scheme SUCI is legal — which is why the paper finds
this the hardest attack for LLM analysts to flag (§4.2, Table 3).
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import Attack
from repro.ran.messages import Message
from repro.ran.nas import RegistrationRequest
from repro.ran.network import FiveGNetwork
from repro.ran.rrc import RrcSetupComplete
from repro.ran.ue import UserEquipment

if False:  # pragma: no cover - typing only
    from repro.telemetry.mobiflow import MobiFlowRecord


class UplinkIdExtractionAttack(Attack):
    """Overshadow the victim's uplink SUCI down to the null scheme."""

    name = "uplink_id_extraction"
    description = "uplink overshadowing downgrades SUCI concealment to plaintext IMSI"
    citation = "[32] Erni et al., AdaptOver, MobiCom 2022"

    def __init__(
        self,
        net: FiveGNetwork,
        victim: UserEquipment,
        start_time: float = 0.0,
        duration_s: float = 30.0,
    ) -> None:
        super().__init__(net, start_time)
        self.victim = victim
        self.duration_s = duration_s
        self.extractions = 0
        self._interceptor_installed = False

    def _launch(self) -> None:
        self._open_window()
        self.net.channel.add_uplink_interceptor(self._overshadow)
        self._interceptor_installed = True
        self.net.sim.schedule(self.duration_s, self._stop)

    def _stop(self) -> None:
        if self._interceptor_installed:
            self.net.channel.remove_uplink_interceptor(self._overshadow)
            self._interceptor_installed = False
        self._close_window()

    def _overshadow(
        self, ue: UserEquipment, rnti: Optional[int], message: Message
    ) -> Optional[Message]:
        if ue is not self.victim or not isinstance(message, RrcSetupComplete):
            return message
        nas = Message.from_wire(message.nas_pdu)
        if not isinstance(nas, RegistrationRequest) or not nas.suci:
            return message
        if nas.suci.startswith("suci-null-"):
            return message
        supi = self.victim.supi
        nas.suci = f"suci-null-{supi.mcc}-{supi.mnc}-{supi.msin}"
        self.extractions += 1
        return RrcSetupComplete(
            rrc_transaction_id=message.rrc_transaction_id,
            selected_plmn=message.selected_plmn,
            nas_pdu=nas.to_wire(),
        )

    def is_malicious(self, record: "MobiFlowRecord") -> bool:
        return (
            self.in_window(record.timestamp)
            and record.msg == "RegistrationRequest"
            and bool(record.suci)
            and record.suci.startswith("suci-null-")
        )
