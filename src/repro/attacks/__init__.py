"""The five end-to-end cellular attacks evaluated by the paper (§4).

Each attack is implemented against the simulated RAN exactly the way the
paper implements them against OAI: either as malicious logic in the UE stack
(rogue UE) or as an over-the-air man-in-the-middle (overshadowing). Every
attack carries its own ground truth — a predicate over MobiFlow records used
by the paper's labeling rules (§4, *Dataset Labeling*).

==============================  ==========================================
Attack                          Manifestation in telemetry
==============================  ==========================================
BTS DoS [38]                    flood of fresh RNTIs, sessions abandoned
                                at the authentication stage
Blind DoS [38]                  the victim's S-TMSI replayed across many
                                short sessions; victim keeps dropping
Uplink ID extraction [32]       standard-compliant registration whose SUCI
                                is null-scheme (plaintext IMSI)
Downlink ID extraction [40]     out-of-order IdentityResponse (plaintext
                                SUPI) where an AuthenticationResponse was
                                expected
Null cipher & integrity [37]    Security Mode Command selecting NEA0/NIA0
==============================  ==========================================
"""

from repro.attacks.base import Attack, RogueUe
from repro.attacks.bts_dos import BtsDosAttack
from repro.attacks.blind_dos import BlindDosAttack
from repro.attacks.uplink_id_extraction import UplinkIdExtractionAttack
from repro.attacks.downlink_id_extraction import DownlinkIdExtractionAttack
from repro.attacks.null_cipher import NullCipherAttack
from repro.attacks.challenge_forgery import ChallengeForgeryAttack
from repro.attacks.limitations import (
    DownlinkMessageDropAttack,
    RogueBaseStationAttack,
)

ALL_ATTACKS = (
    BtsDosAttack,
    BlindDosAttack,
    UplinkIdExtractionAttack,
    DownlinkIdExtractionAttack,
    NullCipherAttack,
)

__all__ = [
    "Attack",
    "RogueUe",
    "BtsDosAttack",
    "BlindDosAttack",
    "UplinkIdExtractionAttack",
    "DownlinkIdExtractionAttack",
    "NullCipherAttack",
    "ChallengeForgeryAttack",
    "DownlinkMessageDropAttack",
    "RogueBaseStationAttack",
    "ALL_ATTACKS",
]
