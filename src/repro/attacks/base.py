"""Attack framework: rogue UEs, MiTM hooks, and ground-truth labeling."""

from __future__ import annotations

import abc
from typing import Optional, Set, TYPE_CHECKING

from repro.ran.network import FiveGNetwork
from repro.ran.rrc import RrcState
from repro.ran.ue import UserEquipment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.mobiflow import MobiFlowRecord


class Attack(abc.ABC):
    """Base class for the five evaluated attacks.

    Lifecycle: construct with the target network, then :meth:`arm` to
    schedule the malicious activity, run the simulation, and afterwards use
    :meth:`is_malicious` to label telemetry entries (the ground truth the
    paper derives by manual inspection).
    """

    #: Short machine name (used in dataset labels and reports).
    name: str = "attack"
    #: Human description shown in reports.
    description: str = ""
    #: Literature reference ([N] numbering follows the paper).
    citation: str = ""

    def __init__(self, net: FiveGNetwork, start_time: float = 0.0) -> None:
        self.net = net
        self.start_time = start_time
        self.armed = False
        # RNTIs observed bound to UEs this attack controls.
        self.malicious_rntis: Set[int] = set()
        # Time window of over-the-air manipulation (MiTM attacks).
        self.window_start: Optional[float] = None
        self.window_end: Optional[float] = None

    def arm(self) -> None:
        """Schedule the attack to begin at ``start_time``."""
        if self.armed:
            raise RuntimeError(f"{self.name} already armed")
        self.armed = True
        self.net.sim.schedule_at(self.start_time, self._launch, name=f"attack.{self.name}")

    @abc.abstractmethod
    def _launch(self) -> None:
        """Begin malicious activity (called at ``start_time``)."""

    def _track_rogue_ue(self, rogue: UserEquipment) -> None:
        """Record every RNTI the network binds to ``rogue``."""

        def listener(rnti: int, ue: UserEquipment) -> None:
            if ue is rogue:
                self.malicious_rntis.add(rnti)

        self.net.channel.add_bind_listener(listener)

    def _open_window(self) -> None:
        self.window_start = self.net.sim.now

    def _close_window(self) -> None:
        self.window_end = self.net.sim.now

    def in_window(self, timestamp: float) -> bool:
        if self.window_start is None:
            return False
        end = self.window_end if self.window_end is not None else float("inf")
        return self.window_start <= timestamp <= end

    def is_malicious(self, record: "MobiFlowRecord") -> bool:
        """Ground-truth label for one telemetry entry.

        Default rule: any entry on an RNTI the attacker controlled.
        MiTM attacks override this with message-level predicates.
        """
        return record.rnti is not None and record.rnti in self.malicious_rntis


class RogueUe(UserEquipment):
    """A UE running attacker-modified stack logic.

    Adds the ability to *abandon* a connection: silently stop responding and
    reset local state so a fresh access can begin immediately — the network
    side is left to time out, exactly what an SDR-based attacker does.
    """

    def abandon_connection(self) -> None:
        self._cancel_t300()
        self.rrc_state = RrcState.IDLE
        self.rnti = None
        self._session_active = False

    def _begin_registered_activity(self) -> None:
        # Rogue UEs do not emit benign background traffic by default.
        pass
