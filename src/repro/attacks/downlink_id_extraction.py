"""Downlink identity extraction (LTrack, [40]; paper Figure 2a).

A man-in-the-middle overwrites the downlink AuthenticationRequest with an
IdentityRequest demanding the permanent identifier. The victim UE — whose
baseband answers pre-security identity procedures — replies with a plaintext
SUPI. The network-side telemetry therefore shows an **out-of-order
sequence**: AuthenticationRequest followed by IdentityResponse where an
AuthenticationResponse belongs (the univariate anomaly of Figure 2a).
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import Attack
from repro.ran.messages import Message
from repro.ran.nas import AuthenticationRequest, IdentityRequest, IdentityType
from repro.ran.network import FiveGNetwork
from repro.ran.rrc import RrcDlInformationTransfer
from repro.ran.ue import UserEquipment

if False:  # pragma: no cover - typing only
    from repro.telemetry.mobiflow import MobiFlowRecord


class DownlinkIdExtractionAttack(Attack):
    """Overwrite one downlink AuthenticationRequest with IdentityRequest(SUPI)."""

    name = "downlink_id_extraction"
    description = "downlink overwrite: auth request -> identity request, UE leaks SUPI"
    citation = "[40] Kotuliak et al., LTrack, USENIX Security 2022"

    def __init__(
        self,
        net: FiveGNetwork,
        victim: UserEquipment,
        start_time: float = 0.0,
        duration_s: float = 30.0,
        shots: int = 1,
    ) -> None:
        super().__init__(net, start_time)
        self.victim = victim
        self.duration_s = duration_s
        self.shots_left = shots
        self.extracted_supis: list[str] = []
        self._victim_rntis: set[int] = set()
        self._interceptor_installed = False

    def _launch(self) -> None:
        self._open_window()
        self.net.channel.add_bind_listener(self._on_bind)
        # Seed with the RNTI the victim may already hold.
        if self.victim.rnti is not None:
            self._victim_rntis.add(self.victim.rnti)
        self.net.channel.add_downlink_interceptor(self._overwrite)
        self._interceptor_installed = True
        self.net.sim.schedule(self.duration_s, self._stop)

    def _on_bind(self, rnti: int, ue: UserEquipment) -> None:
        if ue is self.victim:
            self._victim_rntis.add(rnti)

    def _stop(self) -> None:
        if self._interceptor_installed:
            self.net.channel.remove_downlink_interceptor(self._overwrite)
            self._interceptor_installed = False
        self._close_window()

    def _overwrite(self, rnti: int, message: Message) -> Optional[Message]:
        if self.shots_left <= 0 or rnti not in self._victim_rntis:
            return message
        if not isinstance(message, RrcDlInformationTransfer):
            return message
        nas = Message.from_wire(message.nas_pdu)
        if not isinstance(nas, AuthenticationRequest):
            return message
        self.shots_left -= 1
        self.extracted_supis.append(str(self.victim.supi))
        injected = IdentityRequest(identity_type=IdentityType.SUPI)
        return RrcDlInformationTransfer(nas_pdu=injected.to_wire())

    def is_malicious(self, record: "MobiFlowRecord") -> bool:
        return (
            self.in_window(record.timestamp)
            and record.msg == "IdentityResponse"
            and record.supi is not None
            and record.rnti in self._victim_rntis
        )
