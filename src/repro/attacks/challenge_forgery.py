"""Challenge forgery — a rogue network impersonation probe (extension).

An over-the-air MiTM without the subscriber key overwrites downlink
authentication challenges toward victims (the first step of network
impersonation). Hardened UEs with AUTN verification answer every forged
challenge with ``AuthenticationFailure (MAC failure)``, so the network-side
signature is a burst of authentication failures across sessions — a message
that essentially never appears in benign traffic.

This attack exercises the AUTN verification / SQN freshness machinery the
reproduction adds beyond the paper's five attacks, and plays the "novel
attack" role in the specialized-LLM story: none of the Table 3 models'
zero-shot profiles perceive it; only the fine-tuned cellular model names it.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import Attack
from repro.ran.messages import Message
from repro.ran.nas import AuthenticationRequest
from repro.ran.network import FiveGNetwork
from repro.ran.rrc import RrcDlInformationTransfer

if False:  # pragma: no cover - typing only
    from repro.telemetry.mobiflow import MobiFlowRecord


class ChallengeForgeryAttack(Attack):
    """Overwrite downlink authentication challenges with forged ones."""

    name = "challenge_forgery"
    description = "MiTM forges AuthenticationRequests; UEs answer with MAC failures"
    citation = "extension; cf. TS 33.501 5G-AKA home-control and [27] IMSI-catcher catching"

    def __init__(
        self,
        net: FiveGNetwork,
        start_time: float = 0.0,
        duration_s: float = 20.0,
    ) -> None:
        super().__init__(net, start_time)
        self.duration_s = duration_s
        self.challenges_forged = 0
        self._forged_rntis: set[int] = set()
        self._installed = False

    def _launch(self) -> None:
        self._open_window()
        self.net.channel.add_downlink_interceptor(self._forge)
        self._installed = True
        self.net.sim.schedule(self.duration_s, self._stop)

    def _stop(self) -> None:
        if self._installed:
            self.net.channel.remove_downlink_interceptor(self._forge)
            self._installed = False
        self._close_window()

    def _forge(self, rnti: int, message: Message) -> Optional[Message]:
        if not isinstance(message, RrcDlInformationTransfer):
            return message
        nas = Message.from_wire(message.nas_pdu)
        if not isinstance(nas, AuthenticationRequest):
            return message
        self.challenges_forged += 1
        self._forged_rntis.add(rnti)
        forged = AuthenticationRequest(
            rand=b"\xf0" * 16,  # the impersonator has no subscriber key
            autn=b"\x0f" * 16,
            sqn=nas.sqn,
        )
        return RrcDlInformationTransfer(nas_pdu=forged.to_wire())

    def is_malicious(self, record: "MobiFlowRecord") -> bool:
        """Ground truth: the MAC-failure responses the forgeries provoke."""
        return (
            self.in_window(record.timestamp)
            and record.msg == "AuthenticationFailure"
            and record.rnti in self._forged_rntis
        )
