"""Soak harness: sustained offered load + a mid-run ``kill -9`` fault trial.

Builds on the scale bench's methodology (:mod:`repro.scale.bench`):
geometric rate ramp, keep the highest offered UE-window rate whose trial
finishes with zero drops, every window scored, and max capture->verdict
latency inside the 1 s near-RT budget — but executed on a *real* backend
(wall clock, OS processes) through the :class:`repro.runtime.backend`
interface rather than in simulated time.

The fault trial then re-runs at a fraction of the sustained rate and
``kill -9``'s one scoring worker mid-run. It must demonstrate, on a real
SIGKILL (exit code -9):

- **zero acked-write loss** — every offered window still gets exactly one
  verdict: acks drained from the dead worker's socket are honored, its
  unacked batches are redispatched, and no batch is scored twice;
- **automatic recovery** — the supervisor restarts the worker within its
  backoff budget and the trial still completes inside the SLO;
- **invariant preservation** — ``offered == scored + dropped + pending``
  holds across the process boundary at the end of the run.

``python -m repro runtime soak`` drives this; the CI ``runtime-smoke``
job runs :func:`smoke_config` with the kill enabled and uploads the
``--json`` artifact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.runtime.backend import Backend, RuntimeTrial, make_backend
from repro.runtime.settings import RuntimeSettings, usable_cpus


@dataclass
class SoakConfig:
    """Soak shape: workload, ramp, topology, fault injection."""

    backend: str = "process"  # "inproc" | "process" | "sim"
    workers: int = 2
    sdl_shards: int = 2
    analyzer: bool = True
    duration_s: float = 2.0
    budget_s: float = 1.0
    start_rate: float = 50.0  # UE windows offered per second
    rate_step: float = 1.6
    max_rate: float = 20000.0
    dispatch_records: int = 32
    dispatch_interval_s: float = 0.01
    # Workload: the scale bench's featurized session bank, with a detector
    # sized so inference compute dominates socket transport (a window is
    # ~3.4 KB; a hidden_dim=192 autoencoder forward costs far more than
    # framing + copying it).
    sessions: int = 128
    bank_records: int = 512
    hidden_dim: int = 192
    latent_dim: int = 24
    train_epochs: int = 2
    # One-pass vectorized featurization for the bank build (repro.genfast);
    # bit-identical rows, much faster for large banks.
    vectorized_features: bool = True
    seed: int = 9
    # Fault trial: kill -9 one scoring worker mid-run at a fraction of the
    # sustained rate (headroom makes "recovers inside the SLO" a statement
    # about the failover, not about running at the capacity cliff).
    fault: bool = True
    fault_kill_at_s: float = 0.5
    fault_load_fraction: float = 0.5
    fault_duration_s: float = 3.0

    def runtime_settings(self) -> RuntimeSettings:
        return RuntimeSettings(
            workers=self.workers,
            sdl_shards=self.sdl_shards,
            analyzer=self.analyzer,
            dispatch_records=self.dispatch_records,
            dispatch_interval_s=self.dispatch_interval_s,
        )


@dataclass
class SoakResult:
    config: SoakConfig
    backend: str
    sustained: RuntimeTrial
    trials: int
    fault: Optional[RuntimeTrial] = None
    cpus: int = field(default_factory=usable_cpus)
    workload_wall_s: float = 0.0

    def check(self) -> List[str]:
        """Acceptance violations (empty = pass)."""
        out: List[str] = []
        budget = self.config.budget_s
        if not self.sustained.ok(budget):
            out.append(
                f"sustained trial not clean: {self.sustained.completed}/"
                f"{self.sustained.offered} scored, {self.sustained.dropped} drops, "
                f"max latency {self.sustained.max_latency_s:.3f}s vs {budget:g}s budget"
            )
        fault = self.fault
        if fault is not None:
            if fault.completed != fault.offered:
                out.append(
                    f"fault trial lost verdicts: {fault.completed}/{fault.offered}"
                )
            if fault.acked_score_loss:
                out.append(f"fault trial: {fault.acked_score_loss} acked scores lost")
            if fault.killed_worker is None:
                out.append("fault trial never killed a worker")
            elif fault.restarts < 1:
                out.append(
                    f"killed worker {fault.killed_worker!r} was not restarted"
                )
            if fault.max_latency_s > budget:
                out.append(
                    f"fault trial broke the SLO: max latency "
                    f"{fault.max_latency_s:.3f}s vs {budget:g}s"
                )
            if not fault.invariant.get("ok", True):
                out.append(f"backpressure invariant broken: {fault.invariant}")
        return out

    def render(self) -> str:
        t = self.sustained
        lines = [
            f"runtime-soak [{self.backend}] — {self.cpus} CPU(s), "
            f"{self.config.workers} scoring worker(s)",
            f"  sustained: {t.offered_rate:.0f} windows/s offered, "
            f"{t.throughput:.0f}/s through, p99 {1000 * t.p99_latency_s:.1f}ms, "
            f"max {1000 * t.max_latency_s:.1f}ms, {t.dropped} drops "
            f"({self.trials} trials)",
        ]
        fault = self.fault
        if fault is not None:
            lines.append(
                f"  fault: kill -9 {fault.killed_worker} at "
                f"{self.config.fault_kill_at_s:g}s of {fault.offered_rate:.0f}/s -> "
                f"{fault.completed}/{fault.offered} verdicts, "
                f"{fault.acked_score_loss} acked lost, {fault.restarts} restart(s), "
                f"{fault.redispatched_batches} batch(es) redispatched, "
                f"max {1000 * fault.max_latency_s:.1f}ms"
            )
        violations = self.check()
        lines.append(
            "  PASS" if not violations else "  FAIL: " + "; ".join(violations)
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "backend": self.backend,
            "cpus": self.cpus,
            "workers": self.config.workers,
            "sustained": self.sustained.to_dict(),
            "trials": self.trials,
            "fault": self.fault.to_dict() if self.fault is not None else None,
            "workload_wall_s": self.workload_wall_s,
            "violations": self.check(),
        }


def build_soak_workload(config: SoakConfig):
    """The scale bench's featurized bank with the soak's detector size."""
    from repro.scale.bench import ScaleBenchConfig, build_workload

    return build_workload(
        ScaleBenchConfig(
            sessions=config.sessions,
            bank_records=config.bank_records,
            hidden_dim=config.hidden_dim,
            latent_dim=config.latent_dim,
            train_epochs=config.train_epochs,
            vectorized_features=config.vectorized_features,
            seed=config.seed,
        )
    )


def ramp(
    backend: Backend,
    bank: list,
    config: SoakConfig,
) -> tuple[RuntimeTrial, int]:
    """Geometric ramp; returns (highest clean trial, trials run)."""
    rate = config.start_rate
    best: Optional[RuntimeTrial] = None
    trials = 0
    while rate <= config.max_rate:
        trial = backend.run_trial(bank, rate, config.duration_s)
        trials += 1
        if not trial.ok(config.budget_s):
            break
        best = trial
        rate *= config.rate_step
    while best is None and rate > 1.0:
        rate /= config.rate_step
        trial = backend.run_trial(bank, rate, config.duration_s)
        trials += 1
        if trial.ok(config.budget_s):
            best = trial
    if best is None:
        raise RuntimeError(
            f"backend {backend.name!r} sustained no rate >= 1 window/s "
            f"inside the {config.budget_s:g}s budget"
        )
    return best, trials


def run_soak(config: Optional[SoakConfig] = None, backend: Optional[Backend] = None) -> SoakResult:
    """Full soak: workload build, ramp to the SLO edge, fault trial."""
    config = config or SoakConfig()
    wall_start = time.perf_counter()
    bank, detector = build_soak_workload(config)
    owned = backend is None
    if backend is None:
        backend = make_backend(config.backend, config.runtime_settings())
    try:
        backend.start(detector)
        sustained, trials = ramp(backend, bank, config)
        fault: Optional[RuntimeTrial] = None
        if config.fault and backend.name == "process":
            fault = backend.run_trial(
                bank,
                max(1.0, config.fault_load_fraction * sustained.offered_rate),
                config.fault_duration_s,
                kill_at_s=config.fault_kill_at_s,
            )
    finally:
        if owned:
            backend.close()
    return SoakResult(
        config=config,
        backend=backend.name,
        sustained=sustained,
        trials=trials,
        fault=fault,
        workload_wall_s=time.perf_counter() - wall_start,
    )


def smoke_config() -> SoakConfig:
    """Small soak for CI: a 2-worker topology, one injected kill."""
    return SoakConfig(
        duration_s=1.0,
        start_rate=40.0,
        max_rate=2000.0,
        bank_records=256,
        sessions=64,
        hidden_dim=96,
        latent_dim=16,
        train_epochs=1,
        fault_duration_s=2.0,
        fault_kill_at_s=0.4,
    )
