"""Runtime bench: multi-process vs single-process max UEs/sec under the SLO.

Ramps the same featurized workload through the :class:`InProcessBackend`
(one process, the seed's shape) and the :class:`ProcessBackend` (N
supervised scoring workers over sockets) and gates the ratio of their max
sustained rates under the 1 s near-RT budget.

Floors (``violations``):

- on hosts with **>= 4 usable CPUs** the multi-process runtime must
  sustain ``PARALLEL_SPEEDUP_MIN`` (1.5x) the single-process rate — the
  ISSUE's headline floor;
- on smaller hosts real parallelism is unavailable, so the documented
  **serial-fallback floor** ``SERIAL_SPEEDUP_MIN`` (0.35x) applies
  instead: the process topology may pay transport + GIL-free-but-
  timesliced scheduling costs, but it must stay within ~3x of the
  single-process rate while *still* passing the zero-loss fault trial.
  The committed ``BENCH_runtime.json`` records which floor was applied.

The fault trial (mid-run ``kill -9`` of a scoring worker) runs in both
cases and its zero-acked-loss/recovery checks are unconditional.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.runtime.backend import InProcessBackend, ProcessBackend, RuntimeTrial
from repro.runtime.settings import RuntimeSettings, usable_cpus
from repro.runtime.soak import SoakConfig, build_soak_workload, ramp

PARALLEL_SPEEDUP_MIN = 1.5  # >= 4 CPUs: real parallel scoring must win
PARALLEL_CPUS_MIN = 4
SERIAL_SPEEDUP_MIN = 0.35  # < 4 CPUs: documented serial-fallback floor
BASELINE_SLACK = 0.70  # current >= 70% of the committed measurement


@dataclass
class RuntimeBenchResult:
    config: SoakConfig
    single: RuntimeTrial
    multi: RuntimeTrial
    fault: Optional[RuntimeTrial]
    single_trials: int
    multi_trials: int
    cpus: int = field(default_factory=usable_cpus)
    workload_wall_s: float = 0.0

    @property
    def speedup(self) -> float:
        return self.multi.offered_rate / max(self.single.offered_rate, 1e-9)

    @property
    def parallel_floor_applies(self) -> bool:
        return self.cpus >= PARALLEL_CPUS_MIN

    @property
    def floor(self) -> float:
        return PARALLEL_SPEEDUP_MIN if self.parallel_floor_applies else SERIAL_SPEEDUP_MIN

    def report(self) -> str:
        floor_kind = (
            f"parallel floor {PARALLEL_SPEEDUP_MIN:g}x"
            if self.parallel_floor_applies
            else f"serial-fallback floor {SERIAL_SPEEDUP_MIN:g}x (host has "
            f"{self.cpus} < {PARALLEL_CPUS_MIN} usable CPUs)"
        )
        lines = [
            f"runtime-bench — {self.cpus} usable CPU(s), "
            f"{self.config.workers} scoring worker(s), {floor_kind}",
            f"  single-process: {self.single.offered_rate:.0f} windows/s "
            f"(p99 {1000 * self.single.p99_latency_s:.1f}ms, "
            f"{self.single_trials} trials)",
            f"  multi-process:  {self.multi.offered_rate:.0f} windows/s "
            f"(p99 {1000 * self.multi.p99_latency_s:.1f}ms, "
            f"{self.multi_trials} trials)",
            f"  speedup: {self.speedup:.2f}x (floor {self.floor:g}x)",
        ]
        if self.fault is not None:
            lines.append(
                f"  fault: kill -9 {self.fault.killed_worker} -> "
                f"{self.fault.completed}/{self.fault.offered} verdicts, "
                f"{self.fault.acked_score_loss} acked lost, "
                f"{self.fault.restarts} restart(s)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "cpus": self.cpus,
            "workers": self.config.workers,
            "floor_applied": "parallel" if self.parallel_floor_applies else "serial-fallback",
            "floor": self.floor,
            "speedup": self.speedup,
            "single": self.single.to_dict(),
            "multi": self.multi.to_dict(),
            "fault": self.fault.to_dict() if self.fault is not None else None,
            "workload_wall_s": self.workload_wall_s,
        }


def run_runtime_bench(
    config: Optional[SoakConfig] = None, quick: bool = False
) -> RuntimeBenchResult:
    config = config or SoakConfig()
    if quick:
        from repro.runtime.soak import smoke_config

        config = smoke_config()
    wall_start = time.perf_counter()
    bank, detector = build_soak_workload(config)
    with InProcessBackend(config.runtime_settings()) as single_backend:
        single_backend.start(detector)
        single, single_trials = ramp(single_backend, bank, config)
    with ProcessBackend(config.runtime_settings()) as multi_backend:
        multi_backend.start(detector)
        multi, multi_trials = ramp(multi_backend, bank, config)
        fault: Optional[RuntimeTrial] = None
        if config.fault:
            fault = multi_backend.run_trial(
                bank,
                max(1.0, config.fault_load_fraction * multi.offered_rate),
                config.fault_duration_s,
                kill_at_s=config.fault_kill_at_s,
            )
    return RuntimeBenchResult(
        config=config,
        single=single,
        multi=multi,
        fault=fault,
        single_trials=single_trials,
        multi_trials=multi_trials,
        workload_wall_s=time.perf_counter() - wall_start,
    )


def violations(result: RuntimeBenchResult, baseline: Optional[dict] = None) -> List[str]:
    """Gate a result against the CPU-appropriate floor and the baseline."""
    out: List[str] = []
    budget = result.config.budget_s
    if not result.single.ok(budget):
        out.append("single-process sustained trial was not clean")
    if not result.multi.ok(budget):
        out.append("multi-process sustained trial was not clean")
    if result.speedup < result.floor:
        kind = "parallel" if result.parallel_floor_applies else "serial-fallback"
        out.append(
            f"multi/single speedup {result.speedup:.2f}x below the {kind} "
            f"floor {result.floor:g}x on {result.cpus} CPU(s)"
        )
    fault = result.fault
    if fault is not None:
        if fault.completed != fault.offered or fault.acked_score_loss:
            out.append(
                f"fault trial lost work: {fault.completed}/{fault.offered} "
                f"verdicts, {fault.acked_score_loss} acked lost"
            )
        if fault.killed_worker is not None and fault.restarts < 1:
            out.append(f"killed worker {fault.killed_worker!r} was not restarted")
        if fault.max_latency_s > budget:
            out.append(
                f"fault trial broke the SLO: {fault.max_latency_s:.3f}s max latency"
            )
    if baseline:
        # Only compare measurements taken under the same floor regime —
        # a 1-CPU runner regressing against a 16-CPU baseline is noise.
        same_regime = baseline.get("floor_applied") == (
            "parallel" if result.parallel_floor_applies else "serial-fallback"
        )
        committed = baseline.get("speedup")
        if same_regime and isinstance(committed, (int, float)):
            if result.speedup < committed * BASELINE_SLACK:
                out.append(
                    f"speedup {result.speedup:.2f}x regressed below "
                    f"{BASELINE_SLACK:.0%} of committed {committed:.2f}x"
                )
    return out


def load_baseline(path) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def save_result(result: RuntimeBenchResult, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
