"""Message schema of the process runtime's control/data plane.

Every message crossing a process boundary is a TLV-encoded dict
(:func:`repro.wire.encode_fast`) wrapped in a length-prefixed frame
(:func:`repro.wire.frame`) — the same byte-identical codec the simulated
E2 interfaces speak, so a captured socket stream decodes with the stock
tooling. Messages are plain dicts with a ``"t"`` type tag; the helpers
here centralize construction so field names stay consistent between the
supervisor and the workers.

Data-plane messages are **batch-atomic**: a worker replies to a
``score_batch`` with exactly one ``score_result`` carrying every score of
the batch, or (if it dies first) with nothing at all. The supervisor's
in-flight registry therefore never sees a half-acked batch — a crashed
worker's unacked batches are redispatched wholesale, which is what makes
"zero acked-write loss" provable.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

# Type tags (short strings keep frames small; the TLV codec interns them).
HELLO = "hello"  # worker -> supervisor: identify after (re)connect
HEARTBEAT = "hb"  # worker -> supervisor: liveness + counters
SCORE_BATCH = "score_batch"  # supervisor -> scoring worker
SCORE_RESULT = "score_result"  # scoring worker -> supervisor (batch-atomic ack)
SDL_WRITE = "sdl_write"  # supervisor -> sdl shard
SDL_ACK = "sdl_ack"  # sdl shard -> supervisor (write is durable once seen)
ANALYZE = "analyze"  # supervisor -> analyzer worker
ANALYSIS = "analysis"  # analyzer -> supervisor
DRAIN = "drain"  # supervisor -> worker: finish pending work and exit 0
CRASH = "crash"  # supervisor -> worker: test hook, die immediately (os._exit)


def hello(worker: str, pid: int) -> dict:
    return {"t": HELLO, "worker": worker, "pid": pid}


def heartbeat(worker: str, processed: int, uptime_s: float) -> dict:
    return {"t": HEARTBEAT, "worker": worker, "processed": processed, "uptime_s": uptime_s}


def score_batch(batch_id: int, session_ids: Sequence[Any], matrix: np.ndarray) -> dict:
    """One dispatch unit: ``matrix`` rows are flattened session windows."""
    if matrix.ndim != 2 or matrix.shape[0] != len(session_ids):
        raise ValueError(
            f"matrix {matrix.shape} does not match {len(session_ids)} session ids"
        )
    return {
        "t": SCORE_BATCH,
        "batch_id": batch_id,
        "session_ids": list(session_ids),
        "rows": int(matrix.shape[0]),
        "dim": int(matrix.shape[1]),
        # float64 row-major bytes: np.frombuffer on the far side is a view,
        # so the matrix crosses the socket without a python-level loop.
        "data": np.ascontiguousarray(matrix, dtype=np.float64).tobytes(),
    }


def unpack_score_batch(msg: dict) -> tuple[int, list, np.ndarray]:
    matrix = np.frombuffer(msg["data"], dtype=np.float64).reshape(msg["rows"], msg["dim"])
    return msg["batch_id"], msg["session_ids"], matrix


def score_result(worker: str, batch_id: int, scores: Sequence[float]) -> dict:
    return {
        "t": SCORE_RESULT,
        "worker": worker,
        "batch_id": batch_id,
        "scores": [float(s) for s in scores],
    }


def sdl_write(write_id: int, namespace: str, key: str, value: Any) -> dict:
    return {"t": SDL_WRITE, "write_id": write_id, "ns": namespace, "key": key, "value": value}


def sdl_ack(worker: str, write_id: int) -> dict:
    return {"t": SDL_ACK, "worker": worker, "write_id": write_id}


def analyze(request_id: int, event: dict) -> dict:
    return {"t": ANALYZE, "request_id": request_id, "event": event}


def analysis(worker: str, request_id: int, verdict: dict) -> dict:
    return {"t": ANALYSIS, "worker": worker, "request_id": request_id, "verdict": verdict}


def drain() -> dict:
    return {"t": DRAIN}


def crash() -> dict:
    return {"t": CRASH}
