"""Scheduler backends: one trial contract, three execution substrates.

The soak harness and the runtime bench drive offered-load trials through a
common :class:`Backend` interface; where the work actually executes is a
backend choice:

- :class:`InProcessBackend` — everything in the calling process on the
  wall clock: the seed's single-process shape, measured honestly. This is
  the bench's baseline.
- :class:`ProcessBackend` — the real service topology: scoring workers,
  SDL shards, and the LLM analyzer as supervised OS processes behind
  :class:`~repro.runtime.supervisor.Supervisor`, TLV frames over Unix
  sockets, redispatch-on-crash.
- :class:`SimBackend` — the discrete-event engine (the reproduction's
  original substrate) as *one scheduler among several*: it delegates to
  ``repro.scale.bench``'s trial driver, so sim-time capacity answers stay
  available next to wall-clock ones.

All three run an **open-loop** offered load: record ``j`` is due at
``j/rate`` and its latency is measured against that nominal arrival (not
the actual offer instant), so a backend that falls behind pays the backlog
as latency instead of silently slowing the generator (no coordinated
omission). Ingest is a :class:`~repro.scale.batcher.BoundedBatcher` in
every backend, and the backpressure invariant
``offered == scored + dropped + pending`` is tracked **across the process
boundary**: in-flight rows (dispatched to a worker, not yet acked) and
rows parked for a restarting worker count as pending.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.ml.detector import AnomalyDetector
from repro.ml.serialize import dumps_detector
from repro.obs.metrics import MetricsRegistry
from repro.scale.batcher import BoundedBatcher
from repro.scale.hashring import ConsistentHashRing
from repro.runtime import messages
from repro.runtime.settings import RuntimeSettings
from repro.runtime.supervisor import Supervisor, WorkerSpec
from repro.runtime.transport import TransportError
from repro.runtime import workers as worker_mains

SDL_NS = "xsec.runtime"


@dataclass
class RuntimeTrial:
    """One (backend, rate) offered-load trial."""

    backend: str
    offered_rate: float
    offered: int
    completed: int
    dropped: int
    makespan_s: float
    max_latency_s: float
    p99_latency_s: float
    wall_s: float
    # Process-backend extras (zero/None elsewhere).
    restarts: int = 0
    killed_worker: Optional[str] = None
    redispatched_batches: int = 0
    duplicate_acks: int = 0
    acked_score_loss: int = 0
    analyses: int = 0
    sdl_acked: int = 0
    invariant: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.completed / self.makespan_s if self.makespan_s else 0.0

    def ok(self, budget_s: float) -> bool:
        return (
            self.dropped == 0
            and self.completed == self.offered
            and self.max_latency_s <= budget_s
            and self.acked_score_loss == 0
            and self.invariant.get("ok", True)
        )

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "offered_rate": self.offered_rate,
            "offered": self.offered,
            "completed": self.completed,
            "dropped": self.dropped,
            "throughput": self.throughput,
            "makespan_s": self.makespan_s,
            "max_latency_s": self.max_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "wall_s": self.wall_s,
            "restarts": self.restarts,
            "killed_worker": self.killed_worker,
            "redispatched_batches": self.redispatched_batches,
            "duplicate_acks": self.duplicate_acks,
            "acked_score_loss": self.acked_score_loss,
            "analyses": self.analyses,
            "sdl_acked": self.sdl_acked,
            "invariant": self.invariant,
        }


def _finish(latencies: List[float]) -> tuple[float, float]:
    if not latencies:
        return 0.0, 0.0
    ordered = sorted(latencies)
    p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
    return ordered[-1], p99


class Backend(abc.ABC):
    """One offered-load execution substrate (see module docstring)."""

    name: str = "backend"

    @abc.abstractmethod
    def start(self, detector: AnomalyDetector) -> None:
        """Deploy the trained detector; bring up whatever the backend runs on."""

    @abc.abstractmethod
    def run_trial(
        self,
        bank: list,
        rate: float,
        duration_s: float,
        *,
        kill_at_s: Optional[float] = None,
    ) -> RuntimeTrial:
        """Offer ``rate`` windows/s for ``duration_s``; score all of them."""

    @abc.abstractmethod
    def close(self) -> None:
        """Tear down (idempotent)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class InProcessBackend(Backend):
    """Single-process wall-clock baseline: the seed's shape, measured."""

    name = "inproc"

    def __init__(self, settings: Optional[RuntimeSettings] = None) -> None:
        self.settings = settings or RuntimeSettings()
        self.detector: Optional[AnomalyDetector] = None

    def start(self, detector: AnomalyDetector) -> None:
        self.detector = detector

    def run_trial(
        self,
        bank: list,
        rate: float,
        duration_s: float,
        *,
        kill_at_s: Optional[float] = None,
    ) -> RuntimeTrial:
        if self.detector is None:
            raise RuntimeError("start() the backend before running trials")
        if kill_at_s is not None:
            raise ValueError("the in-process backend has no worker to kill")
        settings = self.settings
        latencies: List[float] = []
        makespan = [0.0]
        wall_start = time.perf_counter()
        clock = lambda: time.perf_counter() - wall_start  # noqa: E731

        def deliver(batch: list) -> None:
            # Seed-identical scoring shape: one [1, dim] call per window.
            for arrival, _, _, vector in batch:
                self.detector.scores(vector.reshape(1, -1))
                done = clock()
                latencies.append(done - arrival)
                makespan[0] = max(makespan[0], done)

        batcher = BoundedBatcher(
            deliver,
            capacity=settings.queue_capacity,
            flush_records=settings.dispatch_records,
            drop_policy=settings.drop_policy,
            clock=clock,
        )
        n = max(1, int(rate * duration_s))
        j = 0
        last_flush = 0.0
        while j < n:
            now = clock()
            arrival = j / rate
            if now >= arrival:
                session_id, vector = bank[j % len(bank)]
                batcher.offer((arrival, j, session_id, vector))
                j += 1
            else:
                if batcher.pending and now - last_flush >= settings.dispatch_interval_s:
                    batcher.flush_now()
                    last_flush = now
                time.sleep(min(arrival - now, 0.002))
        batcher.close()
        max_lat, p99 = _finish(latencies)
        return RuntimeTrial(
            backend=self.name,
            offered_rate=rate,
            offered=n,
            completed=len(latencies),
            dropped=batcher.dropped,
            makespan_s=makespan[0],
            max_latency_s=max_lat,
            p99_latency_s=p99,
            wall_s=time.perf_counter() - wall_start,
            invariant={
                "offered": batcher.offered,
                "scored": len(latencies),
                "dropped": batcher.dropped,
                "pending": batcher.pending,
                "ok": batcher.offered == len(latencies) + batcher.dropped + batcher.pending,
            },
        )

    def close(self) -> None:
        self.detector = None


class ProcessBackend(Backend):
    """The real service topology: supervised worker processes over sockets."""

    name = "process"

    def __init__(
        self,
        settings: Optional[RuntimeSettings] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        crash_after_batches: Optional[int] = None,
    ) -> None:
        self.settings = settings or RuntimeSettings()
        self.metrics = metrics or MetricsRegistry()
        self.supervisor: Optional[Supervisor] = None
        self.detector: Optional[AnomalyDetector] = None
        self._ring: Optional[ConsistentHashRing] = None
        self._scoring: List[str] = []
        self._shards: List[str] = []
        self._crash_after_batches = crash_after_batches
        self._batch_seq = 0
        self._write_seq = 0
        self._analyze_seq = 0
        self.closed = False

    # -- lifecycle -------------------------------------------------------------

    def start(self, detector: AnomalyDetector) -> None:
        self.detector = detector
        blob = dumps_detector(detector)
        settings = self.settings
        sup = Supervisor(settings, metrics=self.metrics)
        self._scoring = [f"score-{i}" for i in range(settings.workers)]
        for name in self._scoring:
            kwargs: dict = {"detector_blob": blob}
            if self._crash_after_batches is not None:
                kwargs["crash_after_batches"] = self._crash_after_batches
            sup.add_worker(
                WorkerSpec(name, worker_mains.scoring_worker_main, kwargs, kind="scoring")
            )
        self._shards = [f"sdl-{i}" for i in range(settings.sdl_shards)]
        for name in self._shards:
            sup.add_worker(WorkerSpec(name, worker_mains.sdl_shard_main, kind="sdl"))
        if settings.analyzer:
            sup.add_worker(
                WorkerSpec("analyzer-0", worker_mains.analyzer_worker_main, kind="analyzer")
            )
        sup.start()
        self.supervisor = sup
        self._ring = ConsistentHashRing(self._scoring)
        self._await_up(timeout_s=30.0)

    def _await_up(self, timeout_s: float) -> None:
        assert self.supervisor is not None
        deadline = time.monotonic() + timeout_s
        names = self.supervisor.worker_names()
        while time.monotonic() < deadline:
            if all(self.supervisor.is_up(name) for name in names):
                return
            self.supervisor.poll(timeout_s=0.2)
        missing = [n for n in names if not self.supervisor.is_up(n)]
        raise TransportError(f"workers never connected: {missing}")

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.supervisor is not None:
            self.supervisor.shutdown()
            self.supervisor = None

    # -- the trial -------------------------------------------------------------

    def run_trial(
        self,
        bank: list,
        rate: float,
        duration_s: float,
        *,
        kill_at_s: Optional[float] = None,
    ) -> RuntimeTrial:
        if self.supervisor is None or self.detector is None:
            raise RuntimeError("start() the backend before running trials")
        sup = self.supervisor
        settings = self.settings
        threshold = self.detector.threshold.threshold or float("inf")
        analyzer_up = settings.analyzer and "analyzer-0" in sup.worker_names()

        latencies: List[float] = []
        makespan = [0.0]
        # batch_id -> {"worker", "session_ids", "matrix", "arrivals"}
        inflight: Dict[int, dict] = {}
        # Rows whose target worker was down at dispatch time; retried in pump.
        parked: List[tuple] = []  # (arrival, j, session_id, vector)
        write_inflight: Dict[int, dict] = {}  # write_id -> {"worker", "msg"}
        counters = {
            "redispatched": 0,
            "duplicates": 0,
            "analyses": 0,
            "sdl_acked": 0,
        }
        restarts_before = sum(
            state["restarts"] for state in sup.health().values()
        )
        killed = [None]
        wall_start = time.perf_counter()
        clock = lambda: time.perf_counter() - wall_start  # noqa: E731

        def up_scoring() -> List[str]:
            return [name for name in self._scoring if sup.is_up(name)]

        def target_for(session_id) -> Optional[str]:
            assert self._ring is not None
            preferred = self._ring.lookup(str(session_id))
            if sup.is_up(preferred):
                return preferred
            up = up_scoring()
            if not up:
                return None
            return up[hash(str(session_id)) % len(up)]

        def dispatch(rows: List[tuple]) -> None:
            """Group rows by target worker; one batch-atomic message each."""
            groups: Dict[str, List[tuple]] = {}
            for row in rows:
                worker = target_for(row[2])
                if worker is None:
                    parked.append(row)
                    continue
                groups.setdefault(worker, []).append(row)
            for worker, grouped in groups.items():
                self._batch_seq += 1
                batch_id = self._batch_seq
                matrix = np.stack([row[3] for row in grouped])
                entry = {
                    "worker": worker,
                    "rows": grouped,
                    "matrix": matrix,
                }
                try:
                    sup.send(
                        worker,
                        messages.score_batch(
                            batch_id, [row[2] for row in grouped], matrix
                        ),
                    )
                except TransportError:
                    parked.extend(grouped)
                    continue
                inflight[batch_id] = entry

        def deliver(batch: List[tuple]) -> None:
            dispatch(batch)
            for arrival, j, session_id, _ in batch:
                self._write_seq += 1
                write_id = self._write_seq
                shard = self._shards[hash(str(session_id)) % len(self._shards)]
                msg = messages.sdl_write(
                    write_id, SDL_NS, f"{j:09d}", {"t": arrival, "s": session_id}
                )
                entry = {"worker": shard, "msg": msg}
                write_inflight[write_id] = entry
                if sup.is_up(shard):
                    try:
                        sup.send(shard, msg)
                    except TransportError:
                        pass  # resent when the shard comes back up

        batcher = BoundedBatcher(
            deliver,
            capacity=settings.queue_capacity,
            flush_records=settings.dispatch_records,
            drop_policy=settings.drop_policy,
            clock=clock,
        )

        def handle_msg(worker: str, msg: dict) -> None:
            kind = msg.get("t")
            if kind == messages.SCORE_RESULT:
                entry = inflight.pop(msg["batch_id"], None)
                if entry is None:
                    counters["duplicates"] += 1
                    return
                done = clock()
                for row, score in zip(entry["rows"], msg["scores"]):
                    arrival, j, session_id, _ = row
                    latencies.append(done - arrival)
                    makespan[0] = max(makespan[0], done)
                    if analyzer_up and score > threshold:
                        self._analyze_seq += 1
                        try:
                            sup.send(
                                "analyzer-0",
                                messages.analyze(
                                    self._analyze_seq,
                                    {
                                        "session_id": session_id,
                                        "score": float(score),
                                        "threshold": float(threshold),
                                        "records": [],
                                    },
                                ),
                            )
                        except TransportError:
                            pass
            elif kind == messages.SDL_ACK:
                if write_inflight.pop(msg["write_id"], None) is not None:
                    counters["sdl_acked"] += 1
            elif kind == messages.ANALYSIS:
                counters["analyses"] += 1

        def pump(timeout_s: float) -> None:
            for event in sup.poll(timeout_s=timeout_s):
                if event.kind == "msg":
                    handle_msg(event.worker, event.msg)
                elif event.kind == "died":
                    # Redispatch every unacked batch the dead worker held;
                    # its drained acks were already delivered above, so
                    # nothing acked is ever re-scored or lost.
                    stale = [
                        bid
                        for bid, entry in inflight.items()
                        if entry["worker"] == event.worker
                    ]
                    rows: List[tuple] = []
                    for bid in stale:
                        rows.extend(inflight.pop(bid)["rows"])
                    if rows:
                        counters["redispatched"] += len(stale)
                        dispatch(rows)
                elif event.kind == "up":
                    if sup.worker_kind(event.worker) == "sdl":
                        for entry in write_inflight.values():
                            if entry["worker"] == event.worker:
                                try:
                                    sup.send(event.worker, entry["msg"])
                                except TransportError:
                                    break
                    if parked:
                        rows, parked[:] = list(parked), []
                        dispatch(rows)

        n = max(1, int(rate * duration_s))
        j = 0
        last_flush = 0.0
        while j < n:
            now = clock()
            if kill_at_s is not None and killed[0] is None and now >= kill_at_s:
                victim = up_scoring()[0] if up_scoring() else None
                if victim is not None:
                    sup.kill_worker(victim)
                    killed[0] = victim
            arrival = j / rate
            if now >= arrival:
                session_id, vector = bank[j % len(bank)]
                batcher.offer((arrival, j, session_id, vector))
                j += 1
                if j % 256 == 0:
                    pump(0.0)
            else:
                if batcher.pending and now - last_flush >= settings.dispatch_interval_s:
                    batcher.flush_now()
                    last_flush = now
                pump(min(arrival - now, 0.01))
        batcher.close()
        # Completion barrier: every dispatched row acked, every parked row
        # redispatched, every SDL write acknowledged.
        deadline = time.monotonic() + settings.drain_timeout_s + duration_s
        while (inflight or parked or write_inflight) and time.monotonic() < deadline:
            if parked and up_scoring():
                rows, parked[:] = list(parked), []
                dispatch(rows)
            pump(0.05)
        restarts = (
            sum(state["restarts"] for state in sup.health().values()) - restarts_before
        )
        pending = (
            batcher.pending
            + sum(len(entry["rows"]) for entry in inflight.values())
            + len(parked)
        )
        max_lat, p99 = _finish(latencies)
        return RuntimeTrial(
            backend=self.name,
            offered_rate=rate,
            offered=n,
            completed=len(latencies),
            dropped=batcher.dropped,
            makespan_s=makespan[0],
            max_latency_s=max_lat,
            p99_latency_s=p99,
            wall_s=time.perf_counter() - wall_start,
            restarts=restarts,
            killed_worker=killed[0],
            redispatched_batches=counters["redispatched"],
            duplicate_acks=counters["duplicates"],
            acked_score_loss=counters["duplicates"],  # an acked batch scored twice
            analyses=counters["analyses"],
            sdl_acked=counters["sdl_acked"],
            invariant={
                "offered": batcher.offered,
                "scored": len(latencies),
                "dropped": batcher.dropped,
                "pending": pending,
                "ok": batcher.offered == len(latencies) + batcher.dropped + pending,
            },
        )


class SimBackend(Backend):
    """The discrete-event engine as one scheduler among several.

    Delegates to :func:`repro.scale.bench._run_trial`: shards and workers
    are modeled servers in simulated time, so the trial answers the
    capacity question independent of the host's core count.
    """

    name = "sim"

    def __init__(self, config=None) -> None:
        from repro.scale.bench import ScaleBenchConfig

        self.config = config or ScaleBenchConfig()
        self.detector: Optional[AnomalyDetector] = None

    def start(self, detector: AnomalyDetector) -> None:
        self.detector = detector

    def run_trial(
        self,
        bank: list,
        rate: float,
        duration_s: float,
        *,
        kill_at_s: Optional[float] = None,
    ) -> RuntimeTrial:
        if self.detector is None:
            raise RuntimeError("start() the backend before running trials")
        from repro.scale.bench import _run_trial

        config = self.config
        config.duration_s = duration_s
        shards = config.fault_shards if kill_at_s is not None else (config.shards[-1])
        replication = config.fault_replication if kill_at_s is not None else config.replication
        trial, _, _ = _run_trial(
            config,
            shards,
            config.workers or shards,
            min(replication, shards),
            rate,
            bank,
            self.detector,
            kill_at_s=kill_at_s,
        )
        return RuntimeTrial(
            backend=self.name,
            offered_rate=trial.offered_rate,
            offered=trial.offered,
            completed=trial.completed,
            dropped=trial.dropped,
            makespan_s=trial.makespan_s,
            max_latency_s=trial.max_latency_s,
            p99_latency_s=trial.p99_latency_s,
            wall_s=trial.wall_s,
            invariant={"ok": True},
        )

    def close(self) -> None:
        self.detector = None


def make_backend(name: str, settings: Optional[RuntimeSettings] = None, **kwargs) -> Backend:
    if name == "inproc":
        return InProcessBackend(settings)
    if name == "process":
        return ProcessBackend(settings, **kwargs)
    if name == "sim":
        return SimBackend(kwargs.get("config"))
    raise ValueError(f"unknown backend {name!r} (have: inproc, process, sim)")
