"""Unix-socket transport: framed TLV messages between supervisor and workers.

Topology: the supervisor binds one ``AF_UNIX`` listener per runtime in a
short-lived temp directory (``xsec-rt-*`` — kept short because Linux caps
socket paths at ~108 bytes); each worker process connects to it by path
and identifies itself with a ``hello``. Connect-by-path rather than
inherited pipe pairs keeps the transport start-method agnostic (fork and
spawn behave identically) and makes reconnect-after-restart natural: a
restarted worker simply dials the same path.

Framing is :func:`repro.wire.frame` — magic byte + u32 length — so a
reader can resynchronize detection of garbage and the stream decodes with
the stock TLV tooling. ``MsgConnection`` owns one socket plus a
:class:`repro.wire.FrameDecoder`; EOF handling drains whatever the kernel
still buffers (a worker killed with ``SIGKILL`` may have acked a batch
whose bytes are in flight — those acks must count).
"""

from __future__ import annotations

import os
import socket
import tempfile
from typing import Any, List, Optional

from repro import wire


class TransportError(RuntimeError):
    """Raised when a peer vanished or the stream desynchronized."""


class MsgConnection:
    """One framed-message socket; select()-able via :meth:`fileno`."""

    def __init__(self, sock: socket.socket, name: str = "?") -> None:
        self._sock = sock
        self._decoder = wire.FrameDecoder()
        self.name = name
        self.eof = False
        self.sent_msgs = 0
        self.sent_bytes = 0
        self.recv_msgs = 0
        self.recv_bytes = 0

    @classmethod
    def connect(cls, path: str, name: str = "?", timeout_s: float = 10.0) -> "MsgConnection":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout_s)
        try:
            sock.connect(path)
        except OSError as exc:
            sock.close()
            raise TransportError(f"connect to {path} failed: {exc}") from exc
        sock.settimeout(None)
        return cls(sock, name=name)

    def fileno(self) -> int:
        return self._sock.fileno()

    def send_msg(self, msg: Any) -> None:
        payload = wire.frame(wire.encode_fast(msg))
        try:
            self._sock.sendall(payload)
        except OSError as exc:
            raise TransportError(f"send to {self.name} failed: {exc}") from exc
        self.sent_msgs += 1
        self.sent_bytes += len(payload)

    def recv_msgs_once(self, bufsize: int = 1 << 16) -> List[Any]:
        """One ``recv`` worth of complete messages (may be empty).

        Sets :attr:`eof` — after first raising out any decodable remainder —
        when the peer closed. The caller decides what EOF means (worker
        death vs. graceful exit).
        """
        try:
            chunk = self._sock.recv(bufsize)
        except (BlockingIOError, InterruptedError, TimeoutError):
            raise  # transient: the caller's idle/retry logic owns these
        except (ConnectionResetError, BrokenPipeError):
            chunk = b""
        except OSError as exc:
            raise TransportError(f"recv from {self.name} failed: {exc}") from exc
        if not chunk:
            self.eof = True
            return []
        self.recv_bytes += len(chunk)
        frames = self._decoder.feed(chunk)
        self.recv_msgs += len(frames)
        return [wire.decode(frame) for frame in frames]

    def drain_eof(self) -> List[Any]:
        """Read until EOF, returning every remaining complete message.

        Called when a worker's process has died: the kernel may still
        buffer acks the worker sent before dying, and dropping them would
        turn acked writes into lost writes.
        """
        out: List[Any] = []
        self._sock.setblocking(False)
        try:
            while not self.eof:
                try:
                    out.extend(self.recv_msgs_once())
                except (BlockingIOError, InterruptedError):
                    break
                except TransportError:
                    break
        finally:
            try:
                self._sock.setblocking(True)
            except OSError:
                pass
        return out

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class Listener:
    """The supervisor's accept socket, bound in a private temp dir."""

    def __init__(self, socket_dir: Optional[str] = None) -> None:
        self._own_dir = socket_dir is None
        self.socket_dir = socket_dir or tempfile.mkdtemp(prefix="xsec-rt-")
        self.path = os.path.join(self.socket_dir, "sup.sock")
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(self.path)
        self._sock.listen(64)

    def fileno(self) -> int:
        return self._sock.fileno()

    def accept(self) -> MsgConnection:
        sock, _ = self._sock.accept()
        return MsgConnection(sock)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
        try:
            os.unlink(self.path)
        except OSError:
            pass
        if self._own_dir:
            try:
                os.rmdir(self.socket_dir)
            except OSError:
                pass

    def __enter__(self) -> "Listener":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
