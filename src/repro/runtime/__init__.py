"""repro.runtime — the process-parallel RIC service runtime.

Runs the reproduction's components as real OS processes (supervised
scoring workers, SDL shards, the LLM analyzer) speaking the byte-identical
TLV wire codec over Unix sockets, with the discrete-event sim engine kept
available as one scheduler backend among several. See docs/RUNTIME.md.
"""

from repro.runtime.backend import (
    Backend,
    InProcessBackend,
    ProcessBackend,
    RuntimeTrial,
    SimBackend,
    make_backend,
)
from repro.runtime.bridge import ProcessScoringPool
from repro.runtime.settings import RuntimeSettings, usable_cpus
from repro.runtime.soak import SoakConfig, SoakResult, run_soak, smoke_config
from repro.runtime.supervisor import Supervisor, SupervisorEvent, WorkerSpec

__all__ = [
    "Backend",
    "InProcessBackend",
    "ProcessBackend",
    "ProcessScoringPool",
    "RuntimeSettings",
    "RuntimeTrial",
    "SimBackend",
    "SoakConfig",
    "SoakResult",
    "Supervisor",
    "SupervisorEvent",
    "WorkerSpec",
    "make_backend",
    "run_soak",
    "smoke_config",
    "usable_cpus",
]
