"""Process supervisor: spawn, watch, restart, and drain runtime workers.

One ``Supervisor`` owns the Unix-socket listener plus every worker
process. Its event loop (:meth:`poll`) multiplexes, via ``select``, the
listener, every worker connection, and every worker's *process sentinel*
— so both messages and deaths wake the loop immediately.

Failure model (docs/RUNTIME.md):

- **Restart triggers on process death only** (sentinel or EOF), never on
  heartbeat staleness — a busy worker on a loaded box is degraded, not
  dead, and restarting it would lose its in-flight batch for nothing.
- **Bounded exponential backoff** between restarts:
  ``min(backoff_base_s * 2**n, backoff_max_s)`` for the n-th recent crash.
- **Crash-loop detection**: more than ``max_restarts`` crashes inside
  ``crash_loop_window_s`` marks the worker *failed* — it stays down and
  the caller decides (the soak harness treats a failed scoring worker as
  a hard error; a failed analyzer only degrades explanations).
- **Death drains the socket first**: a SIGKILL'd worker may have acked
  work whose bytes still sit in the kernel buffer. Those acks are
  delivered as normal events *before* the death event, which is what lets
  the caller's redispatch logic guarantee zero acked-write loss.

The supervisor yields :class:`SupervisorEvent` tuples; policy above the
transport (dispatch, redispatch, invariants) lives in the callers
(:mod:`repro.runtime.backend`, :mod:`repro.runtime.bridge`).
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import select
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.runtime import messages
from repro.runtime.settings import RuntimeSettings
from repro.runtime.transport import Listener, MsgConnection, TransportError

# Worker lifecycle states.
STARTING = "starting"  # spawned, hello not yet seen
UP = "up"  # connected and heartbeating
DEGRADED = "degraded"  # up, but heartbeat is stale
RESTARTING = "restarting"  # dead, waiting out the backoff
FAILED = "failed"  # crash loop — will not be restarted
STOPPED = "stopped"  # exited under drain/shutdown


@dataclass(frozen=True)
class SupervisorEvent:
    """One thing that happened during a poll round."""

    kind: str  # "up" | "msg" | "died" | "restarting" | "failed" | "stopped"
    worker: str
    msg: Optional[dict] = None  # for kind == "msg"
    exitcode: Optional[int] = None  # for kind == "died"
    delay_s: Optional[float] = None  # for kind == "restarting"


@dataclass
class WorkerSpec:
    """How to (re)start one worker process."""

    name: str
    target: Callable[..., None]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    kind: str = "scoring"  # "scoring" | "sdl" | "analyzer"


class _WorkerState:
    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn: Optional[MsgConnection] = None
        self.state = STOPPED
        self.restarts = 0
        self.crash_times: collections.deque = collections.deque()
        self.restart_at = 0.0
        self.last_heartbeat = 0.0
        self.processed = 0


class Supervisor:
    """Spawns workers against one listener; restarts them when they die."""

    def __init__(
        self,
        settings: Optional[RuntimeSettings] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        socket_dir: Optional[str] = None,
    ) -> None:
        self.settings = settings or RuntimeSettings()
        self.listener = Listener(socket_dir)
        self._ctx = multiprocessing.get_context(self.settings.resolved_start_method())
        self._workers: Dict[str, _WorkerState] = {}
        self._unbound: List[MsgConnection] = []
        self._draining = False
        self.closed = False
        metrics = metrics or MetricsRegistry()
        self._restarts_counter = metrics.counter(
            "runtime.worker_restarts_total", help="worker processes respawned"
        )
        self._crashes_counter = metrics.counter(
            "runtime.worker_crashes_total", help="unexpected worker deaths"
        )
        metrics.gauge(
            "runtime.workers_up",
            fn=lambda: float(
                sum(1 for w in self._workers.values() if w.state in (UP, DEGRADED))
            ),
            help="workers currently connected",
        )
        metrics.gauge(
            "runtime.workers_failed",
            fn=lambda: float(
                sum(1 for w in self._workers.values() if w.state == FAILED)
            ),
            help="workers taken out by crash-loop detection",
        )

    # -- lifecycle -------------------------------------------------------------

    def add_worker(self, spec: WorkerSpec) -> None:
        if spec.name in self._workers:
            raise ValueError(f"duplicate worker name {spec.name!r}")
        self._workers[spec.name] = _WorkerState(spec)

    def start(self) -> None:
        for state in self._workers.values():
            if state.process is None:
                self._spawn(state)

    def _spawn(self, state: _WorkerState) -> None:
        kwargs = dict(state.spec.kwargs)
        kwargs.setdefault("heartbeat_interval_s", self.settings.heartbeat_interval_s)
        process = self._ctx.Process(
            target=state.spec.target,
            kwargs={"name": state.spec.name, "socket_path": self.listener.path, **kwargs},
            name=f"xsec-{state.spec.name}",
            daemon=True,
        )
        process.start()
        state.process = process
        state.state = STARTING
        state.last_heartbeat = time.monotonic()

    # -- introspection ---------------------------------------------------------

    def worker_names(self, kind: Optional[str] = None) -> List[str]:
        return [
            name
            for name, state in self._workers.items()
            if kind is None or state.spec.kind == kind
        ]

    def worker_state(self, name: str) -> str:
        return self._workers[name].state

    def worker_kind(self, name: str) -> str:
        return self._workers[name].spec.kind

    def is_up(self, name: str) -> bool:
        return self._workers[name].state in (UP, DEGRADED)

    def worker_pid(self, name: str) -> Optional[int]:
        process = self._workers[name].process
        return process.pid if process is not None else None

    def health(self) -> dict:
        """Per-worker liveness snapshot (the scoreboard's probe input)."""
        now = time.monotonic()
        out = {}
        for name, state in self._workers.items():
            stale = (
                state.state in (UP, DEGRADED)
                and now - state.last_heartbeat > self.settings.heartbeat_timeout_s
            )
            out[name] = {
                "state": DEGRADED if stale else state.state,
                "restarts": state.restarts,
                "processed": state.processed,
                "heartbeat_age_s": now - state.last_heartbeat,
            }
        return out

    # -- messaging -------------------------------------------------------------

    def send(self, name: str, msg: dict) -> None:
        state = self._workers[name]
        if state.conn is None:
            raise TransportError(f"worker {name!r} is not connected")
        state.conn.send_msg(msg)

    # -- the event loop --------------------------------------------------------

    def poll(self, timeout_s: float = 0.1) -> List[SupervisorEvent]:
        """One multiplex round: messages in, deaths handled, restarts due."""
        events: List[SupervisorEvent] = []
        deadline = time.monotonic() + max(0.0, timeout_s)
        while True:
            events.extend(self._respawn_due())
            now = time.monotonic()
            wait = deadline - now
            next_restart = self._next_restart_in()
            if next_restart is not None:
                wait = min(wait, next_restart)
            readers: List[Any] = [self.listener]
            readers.extend(self._unbound)
            sentinels: Dict[int, str] = {}
            for name, state in self._workers.items():
                if state.conn is not None:
                    readers.append(state.conn)
                if state.process is not None and state.state not in (FAILED, STOPPED):
                    sentinels[state.process.sentinel] = name
            try:
                ready, _, _ = select.select(
                    readers + list(sentinels), [], [], max(0.0, wait)
                )
            except InterruptedError:
                ready = []
            if not ready:
                if time.monotonic() >= deadline:
                    return events
                continue
            dead: List[str] = []
            for item in ready:
                if item is self.listener:
                    self._unbound.append(self.listener.accept())
                elif isinstance(item, MsgConnection):
                    events.extend(self._read_conn(item))
                else:  # a process sentinel fired
                    dead.append(sentinels[item])
            for name in dead:
                events.extend(self._handle_death(name))
            if events or time.monotonic() >= deadline:
                return events

    def _read_conn(self, conn: MsgConnection) -> List[SupervisorEvent]:
        events: List[SupervisorEvent] = []
        try:
            msgs = conn.recv_msgs_once()
        except TransportError:
            msgs = []
            conn.eof = True
        for msg in msgs:
            events.extend(self._route(conn, msg))
        if conn.eof:
            if conn in self._unbound:
                self._unbound.remove(conn)
                conn.close()
            else:
                for name, state in self._workers.items():
                    if state.conn is conn:
                        events.extend(self._handle_death(name))
                        break
        return events

    def _route(self, conn: MsgConnection, msg: dict) -> List[SupervisorEvent]:
        kind = msg.get("t")
        if kind == messages.HELLO:
            name = msg.get("worker")
            state = self._workers.get(name)
            if state is None:
                conn.close()
                if conn in self._unbound:
                    self._unbound.remove(conn)
                return []
            if conn in self._unbound:
                self._unbound.remove(conn)
            conn.name = name
            state.conn = conn
            state.state = UP
            state.last_heartbeat = time.monotonic()
            return [SupervisorEvent("up", name)]
        worker = conn.name if conn.name != "?" else msg.get("worker", "?")
        if kind == messages.HEARTBEAT:
            state = self._workers.get(worker)
            if state is not None:
                state.last_heartbeat = time.monotonic()
                state.processed = int(msg.get("processed", state.processed))
                if state.state == DEGRADED:
                    state.state = UP
            return []
        return [SupervisorEvent("msg", worker, msg=msg)]

    def _handle_death(self, name: str) -> List[SupervisorEvent]:
        state = self._workers[name]
        if state.state in (RESTARTING, FAILED, STOPPED):
            return []
        events: List[SupervisorEvent] = []
        exitcode = None
        if state.process is not None:
            state.process.join(timeout=1.0)
            exitcode = state.process.exitcode
        # Deliver kernel-buffered acks before announcing the death: an ack
        # that made it onto the wire is an ack, even if the sender is gone.
        if state.conn is not None:
            for msg in state.conn.drain_eof():
                events.extend(self._route(state.conn, msg))
            state.conn.close()
            state.conn = None
        if self._draining and exitcode == 0:
            state.state = STOPPED
            events.append(SupervisorEvent("stopped", name))
            return events
        self._crashes_counter.inc()
        events.append(SupervisorEvent("died", name, exitcode=exitcode))
        now = time.monotonic()
        state.crash_times.append(now)
        while state.crash_times and now - state.crash_times[0] > self.settings.crash_loop_window_s:
            state.crash_times.popleft()
        if len(state.crash_times) > self.settings.max_restarts:
            state.state = FAILED
            events.append(SupervisorEvent("failed", name))
            return events
        delay = min(
            self.settings.backoff_base_s * (2 ** (len(state.crash_times) - 1)),
            self.settings.backoff_max_s,
        )
        state.state = RESTARTING
        state.restart_at = now + delay
        events.append(SupervisorEvent("restarting", name, delay_s=delay))
        return events

    def _next_restart_in(self) -> Optional[float]:
        due = [
            state.restart_at
            for state in self._workers.values()
            if state.state == RESTARTING
        ]
        if not due:
            return None
        return max(0.0, min(due) - time.monotonic())

    def _respawn_due(self) -> List[SupervisorEvent]:
        events: List[SupervisorEvent] = []
        now = time.monotonic()
        for state in self._workers.values():
            if self._draining:
                break
            if state.state == RESTARTING and now >= state.restart_at:
                state.restarts += 1
                self._restarts_counter.inc()
                self._spawn(state)
        return events

    # -- fault injection -------------------------------------------------------

    def kill_worker(self, name: str) -> int:
        """SIGKILL one worker (the soak harness's fault injector)."""
        state = self._workers[name]
        if state.process is None or not state.process.is_alive():
            raise RuntimeError(f"worker {name!r} is not running")
        pid = state.process.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    # -- drain / shutdown ------------------------------------------------------

    def drain(self, timeout_s: Optional[float] = None) -> List[SupervisorEvent]:
        """Ask every worker to finish pending work and exit; wait for them."""
        timeout_s = self.settings.drain_timeout_s if timeout_s is None else timeout_s
        self._draining = True
        for name, state in self._workers.items():
            if state.conn is not None:
                try:
                    state.conn.send_msg(messages.drain())
                except TransportError:
                    pass
        events: List[SupervisorEvent] = []
        deadline = time.monotonic() + timeout_s
        while not all(
            state.state in (STOPPED, FAILED, RESTARTING)
            for state in self._workers.values()
        ):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            events.extend(self.poll(timeout_s=min(0.2, remaining)))
        return events

    def shutdown(self) -> None:
        """Drain, then terminate stragglers. Idempotent."""
        if self.closed:
            return
        self.closed = True
        try:
            self.drain()
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass
        for state in self._workers.values():
            process = state.process
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=2.0)
            if state.conn is not None:
                state.conn.close()
                state.conn = None
            state.state = STOPPED
        for conn in self._unbound:
            conn.close()
        self._unbound.clear()
        self.listener.close()

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
