"""Worker-process entry points of the service runtime.

Each worker is a plain function run in a child process: it dials the
supervisor's Unix socket, says ``hello``, then serves framed TLV requests
until it reads a ``drain`` (finish and exit 0) or EOF. Workers are
deliberately thin — all policy (dispatch, restart, redispatch, invariants)
lives in the supervisor, so a ``kill -9`` can land at any instruction
without corrupting shared state.

Bit-identity contract: the scoring worker scores each window as its own
``[1, window*dim]`` detector call — exactly the seed's inline shape —
because batched BLAS reductions are *not* bit-identical to row-wise calls
(verified empirically; see docs/RUNTIME.md). Process parallelism, not
intra-worker batching, is where the runtime's throughput comes from.

Test hooks: ``crash_after_batches`` makes a scoring worker ``os._exit(1)``
mid-stream after acking N batches (deterministic crash-mid-batch
coverage), and every worker honors a ``crash`` control message (the
supervisor's fault injector uses SIGKILL instead when available).
"""

from __future__ import annotations

import os
import time
from typing import Optional

import numpy as np

from repro.ml.serialize import loads_detector
from repro.runtime import messages
from repro.runtime.transport import MsgConnection, TransportError


def _serve(conn: MsgConnection, worker: str, handler, heartbeat_interval_s: float) -> None:
    """Shared request loop: heartbeats between requests, drain/crash handling."""
    started = time.monotonic()
    processed = 0
    last_beat = 0.0
    conn.send_msg(messages.hello(worker, os.getpid()))
    while True:
        now = time.monotonic()
        if now - last_beat >= heartbeat_interval_s:
            conn.send_msg(messages.heartbeat(worker, processed, now - started))
            last_beat = now
        conn._sock.settimeout(heartbeat_interval_s)
        try:
            msgs = conn.recv_msgs_once()
        except TimeoutError:
            continue
        finally:
            conn._sock.settimeout(None)
        if conn.eof:
            return
        for msg in msgs:
            kind = msg.get("t")
            if kind == messages.DRAIN:
                return
            if kind == messages.CRASH:
                os._exit(1)
            handler(msg)
            processed += 1


def scoring_worker_main(
    name: str,
    socket_path: str,
    detector_blob: bytes,
    heartbeat_interval_s: float = 0.5,
    crash_after_batches: Optional[int] = None,
) -> None:
    """MobiWatch scoring worker: ``score_batch`` in, batch-atomic result out."""
    detector = loads_detector(detector_blob)
    conn = MsgConnection.connect(socket_path, name=name)
    acked = 0

    def handle(msg: dict) -> None:
        nonlocal acked
        if msg.get("t") != messages.SCORE_BATCH:
            return
        batch_id, _, matrix = messages.unpack_score_batch(msg)
        # Seed-identical shape: one [1, dim] call per window (see module doc).
        scores = [float(detector.scores(matrix[i : i + 1])[0]) for i in range(len(matrix))]
        conn.send_msg(messages.score_result(name, batch_id, scores))
        acked += 1
        if crash_after_batches is not None and acked >= crash_after_batches:
            os._exit(1)

    try:
        _serve(conn, name, handle, heartbeat_interval_s)
    finally:
        conn.close()


def sdl_shard_main(
    name: str,
    socket_path: str,
    heartbeat_interval_s: float = 0.5,
) -> None:
    """SDL shard worker: durable (in-memory) keyed store; ack == durable."""
    store: dict[tuple, object] = {}
    conn = MsgConnection.connect(socket_path, name=name)

    def handle(msg: dict) -> None:
        if msg.get("t") != messages.SDL_WRITE:
            return
        store[(msg["ns"], msg["key"])] = msg["value"]
        conn.send_msg(messages.sdl_ack(name, msg["write_id"]))

    try:
        _serve(conn, name, handle, heartbeat_interval_s)
    finally:
        conn.close()


def analyzer_worker_main(
    name: str,
    socket_path: str,
    heartbeat_interval_s: float = 0.5,
    model: str = "chatgpt-4o",
) -> None:
    """LLM-analyzer worker: anomaly event in, expert verdict out."""
    # Imported here so scoring/SDL workers never pay for the LLM stack.
    from repro.llm.analyst import ExpertAnalyst
    from repro.llm.client import LlmClient, SimulatedLlmServer
    from repro.telemetry import MobiFlowRecord

    analyst = ExpertAnalyst(LlmClient(SimulatedLlmServer(), model=model))
    conn = MsgConnection.connect(socket_path, name=name)

    def handle(msg: dict) -> None:
        if msg.get("t") != messages.ANALYZE:
            return
        event = msg["event"]
        try:
            records = [MobiFlowRecord.from_dict(r) for r in event.get("records", [])]
            result = analyst.analyze(records, detector_flagged=True)
            verdict = {
                "ok": True,
                "is_anomalous": bool(result.response.is_anomalous),
                "needs_human_review": bool(result.needs_human_review),
                "model": result.model,
            }
        except Exception as exc:  # noqa: BLE001 - verdict carries the failure
            verdict = {"ok": False, "error": str(exc)}
        conn.send_msg(messages.analysis(name, msg["request_id"], verdict))

    try:
        _serve(conn, name, handle, heartbeat_interval_s)
    finally:
        conn.close()


def synthetic_worker_main(
    name: str,
    socket_path: str,
    heartbeat_interval_s: float = 0.5,
    crash_after_batches: Optional[int] = None,
    service_time_s: float = 0.0,
) -> None:
    """Deterministic scoring stand-in for supervisor tests (no model needed).

    Scores are ``row.sum()`` so the test can predict every result; an
    optional per-batch sleep simulates inference cost.
    """
    conn = MsgConnection.connect(socket_path, name=name)
    acked = 0

    def handle(msg: dict) -> None:
        nonlocal acked
        if msg.get("t") != messages.SCORE_BATCH:
            return
        batch_id, _, matrix = messages.unpack_score_batch(msg)
        if service_time_s:
            time.sleep(service_time_s)
        conn.send_msg(
            messages.score_result(name, batch_id, np.asarray(matrix).sum(axis=1))
        )
        acked += 1
        if crash_after_batches is not None and acked >= crash_after_batches:
            os._exit(1)

    try:
        _serve(conn, name, handle, heartbeat_interval_s)
    finally:
        conn.close()
