"""Configuration knobs for the process-parallel service runtime (``repro.runtime``).

Kept dependency-free (like :mod:`repro.scale.settings`) so every layer can
import it without cycles. **Every default preserves the seed's in-process
behaviour bit-for-bit**: no worker processes are spawned, no sockets are
opened, and MobiWatch scores exactly as before.

The switches:

- ``score_in_processes`` — route MobiWatch's window scoring through a
  supervised pool of real OS worker processes speaking the TLV wire codec
  over Unix sockets. float64 scores computed in a worker are bit-identical
  to in-process scoring (same NumPy, same kernels), so the anomaly-event
  stream is unchanged — enforced per attack scenario by
  ``tests/test_runtime.py``.
- everything else parameterizes the standalone service runtime
  (``python -m repro runtime``): worker/shard topology, dispatch batching,
  bounded ingest, and the supervisor's restart policy.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass

_DROP_POLICIES = ("oldest", "newest")
_BACKENDS = ("inproc", "process", "sim")


def default_start_method() -> str:
    """``fork`` where the platform has it (fast, no re-import), else ``spawn``."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


@dataclass
class RuntimeSettings:
    """Knobs of the ``repro.runtime`` subsystem (see module docstring)."""

    # MobiWatch integration: score windows in supervised worker processes.
    # Off = the seed's in-process scoring path, untouched.
    score_in_processes: bool = False

    # Service topology (the standalone runtime and the scoring bridge).
    workers: int = 2
    sdl_shards: int = 2
    sdl_replication: int = 1
    analyzer: bool = True

    # Ingest: BoundedBatcher semantics across the process boundary
    # (offered == ingested + dropped + pending must keep holding).
    queue_capacity: int = 32768
    dispatch_records: int = 64
    dispatch_interval_s: float = 0.02
    drop_policy: str = "oldest"

    # Supervisor restart policy: bounded exponential backoff between
    # restarts; more than ``max_restarts`` crashes inside
    # ``crash_loop_window_s`` marks the worker failed (crash loop) instead
    # of restarting forever.
    max_restarts: int = 5
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    crash_loop_window_s: float = 30.0

    # Health heartbeats: workers report liveness + counters on this
    # period; a heartbeat older than the timeout marks the worker stale
    # (degraded) on the health scoreboard. Restarts trigger on process
    # death, never on staleness alone (a busy worker is not a dead one).
    heartbeat_interval_s: float = 0.5
    heartbeat_timeout_s: float = 5.0

    # Graceful drain: how long shutdown waits for workers to finish
    # pending work and exit on their own before terminating them.
    drain_timeout_s: float = 10.0

    # Process start method; "" = fork where available, spawn otherwise.
    start_method: str = ""

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.sdl_shards < 1:
            raise ValueError(f"sdl_shards must be >= 1, got {self.sdl_shards}")
        if not 1 <= self.sdl_replication <= self.sdl_shards:
            raise ValueError(
                f"sdl_replication must be in [1, sdl_shards={self.sdl_shards}], "
                f"got {self.sdl_replication}"
            )
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.dispatch_records < 1:
            raise ValueError(f"dispatch_records must be >= 1, got {self.dispatch_records}")
        if self.drop_policy not in _DROP_POLICIES:
            raise ValueError(
                f"drop_policy must be one of {_DROP_POLICIES}, got {self.drop_policy!r}"
            )
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.backoff_base_s <= 0 or self.backoff_max_s < self.backoff_base_s:
            raise ValueError(
                "backoff must satisfy 0 < backoff_base_s <= backoff_max_s, got "
                f"{self.backoff_base_s}/{self.backoff_max_s}"
            )
        if self.heartbeat_interval_s <= 0 or self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "heartbeats must satisfy 0 < interval < timeout, got "
                f"{self.heartbeat_interval_s}/{self.heartbeat_timeout_s}"
            )
        if self.start_method and self.start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start_method {self.start_method!r} unavailable on this platform "
                f"(have: {multiprocessing.get_all_start_methods()})"
            )

    @property
    def any_enabled(self) -> bool:
        return self.score_in_processes

    def resolved_start_method(self) -> str:
        return self.start_method or default_start_method()


def usable_cpus() -> int:
    """CPUs the process may schedule on (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1
