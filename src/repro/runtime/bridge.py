"""``ProcessScoringPool``: MobiWatch's window scoring in real worker processes.

A drop-in for the surface of :class:`repro.scale.pool.InferencePool` that
MobiWatch and the health scoreboard use (``submit``/``flush``/``pending``/
``stats``/``close``/``worker_names``/``worker_backlog``), but whose
``flush`` ships the pending windows to supervised OS processes over the
TLV socket transport and blocks until every score is acked — restarting
and redispatching transparently if a worker dies mid-flush.

Two properties make this safe to put behind ``XsecConfig.runtime``
without perturbing the reproduction:

- **Bit-identity**: the worker scores each window as its own ``[1, dim]``
  detector call (the seed's exact shape — batched BLAS is *not* bitwise
  equal to row-wise, so we never batch the math), and the same NumPy
  computes it, so every float64 score is identical to in-process scoring.
- **Sim-time transparency**: the blocking flush happens *between* two
  simulator events; ``completed_at`` is taken from the injected sim
  clock, which does not advance during the flush. AnomalyEvent
  timestamps therefore match the seed stream exactly (enforced on all
  five attack captures by ``tests/test_runtime.py``).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.ml.detector import AnomalyDetector
from repro.ml.serialize import dumps_detector
from repro.obs.metrics import MetricsRegistry
from repro.runtime import messages
from repro.runtime import workers as worker_mains
from repro.runtime.settings import RuntimeSettings
from repro.runtime.supervisor import Supervisor, WorkerSpec
from repro.runtime.transport import TransportError
from repro.scale.hashring import ConsistentHashRing
from repro.scale.pool import ScoreCallback


class ProcessScoringPool:
    """Window-scoring pool backed by supervised worker processes."""

    def __init__(
        self,
        detector: AnomalyDetector,
        settings: Optional[RuntimeSettings] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
        name: str = "mobiwatch",
        flush_timeout_s: float = 60.0,
    ) -> None:
        self.settings = settings or RuntimeSettings()
        self._clock = clock or (lambda: 0.0)
        self.name = name
        self.flush_timeout_s = flush_timeout_s
        self._worker_names = [f"{name}-score-{i}" for i in range(self.settings.workers)]
        self._ring = (
            ConsistentHashRing(self._worker_names)
            if len(self._worker_names) > 1
            else None
        )
        self._pending: List[tuple] = []  # (worker, session_id, vector, callback)
        self._batch_seq = 0
        self.windows_scored = 0
        self.batches = 0
        self.redispatched_batches = 0
        self.callback_errors = 0
        self.closed = False
        metrics = metrics or MetricsRegistry()
        pool_label = {"pool": name}
        self._batches_counter = metrics.counter(
            "pool.batches_total", labels=pool_label, help="score batches dispatched"
        )
        self._windows_hist = metrics.histogram(
            "pool.windows_per_batch",
            labels=pool_label,
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
            help="windows per dispatched batch",
        )
        self._redispatch_counter = metrics.counter(
            "runtime.batches_redispatched_total",
            labels=pool_label,
            help="score batches re-sent after a worker death",
        )
        metrics.gauge(
            "pool.queue_depth",
            labels=pool_label,
            fn=lambda: len(self._pending),
            help="queued window-scoring requests",
        )
        self.supervisor = Supervisor(self.settings, metrics=metrics)
        blob = dumps_detector(detector)
        for worker in self._worker_names:
            self.supervisor.add_worker(
                WorkerSpec(
                    worker,
                    worker_mains.scoring_worker_main,
                    {"detector_blob": blob},
                    kind="scoring",
                )
            )
        self.supervisor.start()
        self._await_up()
        for worker in self._worker_names:
            metrics.gauge(
                "pool.worker_backlog",
                labels={"pool": name, "worker": worker},
                fn=lambda w=worker: float(self.worker_backlog(w)),
                help="queued requests assigned to the worker",
            )

    def _await_up(self, timeout_s: float = 30.0) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if all(self.supervisor.is_up(w) for w in self._worker_names):
                return
            self.supervisor.poll(timeout_s=0.2)
        missing = [w for w in self._worker_names if not self.supervisor.is_up(w)]
        raise TransportError(f"scoring workers never connected: {missing}")

    # -- InferencePool surface ---------------------------------------------------

    @property
    def workers(self) -> int:
        return len(self._worker_names)

    @property
    def worker_names(self) -> List[str]:
        return list(self._worker_names)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def worker_backlog(self, worker: str) -> int:
        return sum(1 for entry in self._pending if entry[0] == worker)

    def worker_for(self, session_id: Any) -> str:
        if self._ring is None:
            return self._worker_names[0]
        return self._ring.lookup(str(session_id))

    def submit(self, session_id: Any, vector: np.ndarray, callback: ScoreCallback) -> None:
        if self.closed:
            raise RuntimeError(f"pool {self.name!r} is closed")
        self._pending.append((self.worker_for(session_id), session_id, vector, callback))
        # No size-triggered auto-flush: MobiWatch flushes at its existing
        # event boundaries, which keeps the event-delivery order (and so
        # the AnomalyEvent stream) identical to the seed path.

    def flush(self) -> int:
        """Ship pending windows to the workers; block until all are scored."""
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        inflight: Dict[int, dict] = {}
        scores: Dict[int, List[float]] = {}

        def dispatch(rows: List[tuple]) -> None:
            groups: Dict[str, List[tuple]] = {}
            for row in rows:
                worker = row[0]
                if not self.supervisor.is_up(worker):
                    up = [w for w in self._worker_names if self.supervisor.is_up(w)]
                    worker = up[0] if up else row[0]
                groups.setdefault(worker, []).append(row)
            for worker, grouped in groups.items():
                self._batch_seq += 1
                batch_id = self._batch_seq
                matrix = np.stack([np.asarray(row[2], dtype=np.float64) for row in grouped])
                try:
                    self.supervisor.send(
                        worker,
                        messages.score_batch(batch_id, [row[1] for row in grouped], matrix),
                    )
                except TransportError:
                    # Worker vanished between is_up and send: park under its
                    # name; the death event redispatches.
                    inflight[self._batch_seq] = {"worker": worker, "rows": grouped}
                    continue
                inflight[batch_id] = {"worker": worker, "rows": grouped}
                self.batches += 1
                self._batches_counter.inc()
                self._windows_hist.observe(len(grouped))

        dispatch(pending)
        deadline = time.monotonic() + self.flush_timeout_s
        while inflight:
            if time.monotonic() > deadline:
                raise TransportError(
                    f"pool {self.name!r} flush timed out with "
                    f"{sum(len(e['rows']) for e in inflight.values())} windows unacked"
                )
            for event in self.supervisor.poll(timeout_s=0.1):
                if event.kind == "msg" and event.msg.get("t") == messages.SCORE_RESULT:
                    entry = inflight.pop(event.msg["batch_id"], None)
                    if entry is not None:
                        scores[event.msg["batch_id"]] = (entry, event.msg["scores"])
                elif event.kind == "died":
                    stale = [
                        bid
                        for bid, entry in inflight.items()
                        if entry["worker"] == event.worker
                    ]
                    rows: List[tuple] = []
                    for bid in stale:
                        rows.extend(inflight.pop(bid)["rows"])
                    if rows:
                        self.redispatched_batches += len(stale)
                        self._redispatch_counter.inc(len(stale))
                        dispatch(rows)
                elif event.kind == "failed":
                    raise TransportError(
                        f"scoring worker {event.worker!r} crash-looped; "
                        "cannot guarantee delivery"
                    )
        # Deliver every verdict in the original submission order: the
        # callbacks run alert logic whose event order must match the seed.
        completed_at = self._clock()
        by_row: Dict[int, float] = {}
        for entry, batch_scores in scores.values():
            for row, score in zip(entry["rows"], batch_scores):
                by_row[id(row)] = float(score)
        failures: List[BaseException] = []
        for row in pending:
            score = by_row[id(row)]
            self.windows_scored += 1
            try:
                row[3](score, completed_at)
            except Exception as exc:  # noqa: BLE001 - deliver the rest first
                self.callback_errors += 1
                failures.append(exc)
        if failures:
            raise failures[0]
        return len(pending)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> int:
        """Deliver pending scores, stop the workers. Idempotent."""
        if self.closed:
            return 0
        delivered = self.flush()
        self.closed = True
        self.supervisor.shutdown()
        return delivered

    def __enter__(self) -> "ProcessScoringPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "windows_scored": self.windows_scored,
            "batches": self.batches,
            "pending": self.pending,
            "redispatched_batches": self.redispatched_batches,
            "callback_errors": self.callback_errors,
            "closed": self.closed,
            "health": self.supervisor.health(),
        }
