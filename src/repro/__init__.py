"""6G-XSec reproduction: explainable edge security for O-RAN (HotNets '24).

Top-level convenience API::

    from repro import SixGXSec, XsecConfig
    from repro.experiments import generate_benign_dataset

    benign = generate_benign_dataset()
    config = XsecConfig()
    xsec = SixGXSec(config)
    xsec.train_from_benign(
        benign.labeled(config.spec, config.window, "benign").windowed.windows
    )
    xsec.run(until=60.0)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

__version__ = "0.1.0"


def __getattr__(name):
    # Lazy imports keep `import repro.wire` and friends cheap and avoid
    # circular imports between the subpackages and this convenience API.
    if name in ("SixGXSec", "XsecConfig"):
        from repro import core

        return getattr(core, name)
    if name in ("FiveGNetwork", "NetworkConfig"):
        from repro import ran

        return getattr(ran, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = ["SixGXSec", "XsecConfig", "FiveGNetwork", "NetworkConfig", "__version__"]
