#!/usr/bin/env python3
"""Figure 2, live: the message sequences of the paper's two illustrated attacks.

Regenerates the paper's Figure 2 from actual simulation runs:

(a) a benign registration next to a downlink identity-extraction attack —
    the out-of-order IdentityResponse where an AuthenticationResponse
    belongs (univariate anomaly);
(b) a RAN DoS flood — the same truncated connection pattern repeated from
    a stream of fresh RNTIs (multivariate anomaly).

Run:  python examples/attack_traces.py
"""

from repro.attacks import BtsDosAttack, DownlinkIdExtractionAttack
from repro.ran import FiveGNetwork, NetworkConfig
from repro.telemetry import MobiFlowCollector


def session_lines(series, session_id):
    return [
        f"    {r.timestamp:7.3f}  {r.direction}  {r.msg}"
        + (f"  [SUPI {r.supi} IN PLAINTEXT]" if r.supi else "")
        for r in series
        if r.session_id == session_id
    ]


def main() -> None:
    # -- (a) benign vs. downlink identity extraction -------------------------
    net = FiveGNetwork(NetworkConfig(seed=61))
    benign_ue = net.add_ue("pixel5")
    net.sim.schedule(0.2, benign_ue.start_session)
    victim = net.add_ue("pixel6", name="victim")
    net.sim.schedule(3.0, victim.start_session)
    attack = DownlinkIdExtractionAttack(net, victim=victim, start_time=2.5, duration_s=8.0)
    attack.arm()
    net.run(until=20.0)
    series = MobiFlowCollector().parse_stream(net.pcap)

    benign_session = next(r.session_id for r in series if r.session_id)
    attacked_session = next(
        r.session_id for r in series if attack.is_malicious(r)
    )
    print("Figure 2a — benign sequence vs. identity extraction targeting the UE")
    print("  benign registration:")
    print("\n".join(session_lines(series, benign_session)[:8]))
    print("  attacked registration (note IdentityResponse after AuthenticationRequest):")
    print("\n".join(session_lines(series, attacked_session)[:8]))

    # -- (b) RAN DoS flood -----------------------------------------------------
    net2 = FiveGNetwork(NetworkConfig(seed=62))
    flood = BtsDosAttack(net2, start_time=0.5, connections=3, interval_s=0.1)
    flood.arm()
    net2.run(until=10.0)
    series2 = MobiFlowCollector().parse_stream(net2.pcap)
    print("\nFigure 2b — RAN DoS: repeated truncated connections, fresh RNTIs")
    sessions = sorted(
        {r.session_id for r in series2 if r.rnti in flood.malicious_rntis}
    )
    for session in sessions[:3]:
        rnti = next(r.rnti for r in series2 if r.session_id == session)
        print(f"  connection RNTI 0x{rnti:04X}:")
        print("\n".join(session_lines(series2, session)))


if __name__ == "__main__":
    main()
