#!/usr/bin/env python3
"""Closed-loop DoS mitigation: detect, explain, and act automatically.

Scenario: a private 5G cell is serving a handful of subscribers when two
denial-of-service campaigns hit it — a BTS DoS signaling storm, then a
Blind DoS that keeps kicking one victim offline by replaying its S-TMSI.
6G-XSec is deployed with the automated-response policy enabled (paper §5,
Automated Network Responses): confirmed signaling-storm incidents release
the offending radio contexts, and confirmed TMSI-replay incidents bar the
replayed identity at the CU.

Run:  python examples/dos_closed_loop.py
"""

from repro.attacks import BlindDosAttack, BtsDosAttack
from repro.core import SixGXSec, XsecConfig
from repro.experiments import generate_benign_dataset
from repro.experiments.colosseum import ColosseumScenario, run_scenario
from repro.experiments.datasets import BenignDatasetConfig
from repro.ran.network import NetworkConfig


def main() -> None:
    config = XsecConfig(
        train_epochs=25, auto_release=True, auto_blocklist=True, auto_rate_limit=True
    )

    print("Training MobiWatch on benign traffic ...")
    benign = generate_benign_dataset(
        BenignDatasetConfig(
            duration_s=240.0,
            ue_mix=(("pixel5", 1), ("pixel6", 1), ("galaxy_a53", 1), ("oai_ue", 2)),
        )
    )
    labeled = benign.labeled(config.spec, config.window, "benign")
    xsec = SixGXSec(config, network_config=NetworkConfig(seed=1234))
    xsec.train_from_benign(labeled.windowed.windows)

    print("Starting live traffic and arming two DoS campaigns ...")
    run_scenario(
        xsec.net,
        ColosseumScenario(
            duration_s=60.0,
            ue_mix=(("pixel5", 1), ("galaxy_a22", 1), ("oai_ue", 1)),
            mean_think_time_s=8.0,
        ),
        run=False,
    )
    victim = xsec.net.add_ue("pixel6", name="victim")
    xsec.net.sim.schedule(2.0, victim.start_session)
    storm = BtsDosAttack(xsec.net, start_time=8.0, connections=12, interval_s=0.08)
    replay = BlindDosAttack(xsec.net, victim=victim, start_time=25.0, replays=6)
    storm.arm()
    replay.arm()
    xsec.run(until=80.0)

    print("\nIncident timeline:")
    for incident in xsec.pipeline.incidents:
        anomaly = incident.anomaly
        line = (
            f"  t={anomaly.detected_at:7.2f}s session={anomaly.session_id:<4d} "
            f"score={anomaly.score:.3f}"
        )
        if incident.verdict is not None:
            top = incident.verdict.verdict.response.top_attacks
            line += f" -> LLM: {incident.verdict.verdict.response.verdict}"
            if top:
                line += f" ({top[0][0][:42]})"
        if incident.action:
            line += f" -> ACTION: {incident.action} @ t={incident.action_at:.2f}s"
        print(line)

    print("\nAutomated responses taken:")
    for action, params in xsec.pipeline.actions_taken:
        pretty = {k: hex(v) if isinstance(v, int) else v for k, v in params.items()}
        print(f"  {action}: {pretty}")

    print("\nEffect on the RAN:")
    print(f"  setup requests rejected by the CU blocklist: {xsec.net.cu.setup_requests_rejected}")
    print(f"  setup requests barred by the DU rate limiter: {xsec.net.du.setup_requests_rate_limited}")
    print(f"  E2 control actions executed by the RIC agent: {xsec.agent.controls_executed}")
    print(f"  storm attacker RNTIs consumed: {len(storm.malicious_rntis)}")
    print(f"  replayed victim TMSI: 0x{replay.rogue.victim_s_tmsi:08x}" if replay.rogue else "")
    print(f"\nPipeline summary: {xsec.pipeline.summary()}")


if __name__ == "__main__":
    main()
