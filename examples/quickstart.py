#!/usr/bin/env python3
"""Quickstart: detect a cellular attack end-to-end in under a minute.

Walks the whole 6G-XSec story on a laptop:

1. collect benign telemetry from a simulated 5G network (the paper's
   testbed substitute),
2. train the MobiWatch autoencoder on benign traffic only (via the SMO
   train-then-deploy workflow),
3. run live traffic with a BTS DoS attack through the full O-RAN pipeline
   (E2 telemetry -> MobiWatch -> LLM expert referencing),
4. print what was detected, explained, and why.

Run:  python examples/quickstart.py
"""

from repro import SixGXSec, XsecConfig
from repro.attacks import BtsDosAttack
from repro.experiments import generate_benign_dataset
from repro.experiments.datasets import BenignDatasetConfig
from repro.ran.network import NetworkConfig


def main() -> None:
    config = XsecConfig(train_epochs=20)

    print("1) Collecting benign telemetry from the simulated testbed ...")
    benign = generate_benign_dataset(
        BenignDatasetConfig(
            duration_s=180.0,
            ue_mix=(("pixel5", 1), ("galaxy_a53", 1), ("oai_ue", 2)),
        )
    )
    labeled = benign.labeled(config.spec, config.window, "benign")
    print(
        f"   {benign.stats.sessions_completed} UE sessions, "
        f"{len(benign.series)} MobiFlow records, "
        f"{labeled.num_windows} training windows"
    )

    print("2) Training MobiWatch's autoencoder on benign traffic only ...")
    xsec = SixGXSec(config, network_config=NetworkConfig(seed=42))
    xsec.train_from_benign(labeled.windowed.windows)
    print(f"   99th-percentile threshold = {xsec.mobiwatch.detector.threshold.threshold:.4f}")

    print("3) Running live traffic with a BTS DoS attack ...")
    ue = xsec.net.add_ue("pixel5")
    xsec.net.sim.schedule(0.5, ue.start_session)
    BtsDosAttack(xsec.net, start_time=3.0, connections=10, interval_s=0.08).arm()
    xsec.run(until=30.0)

    print("4) Results:")
    summary = xsec.pipeline.summary()
    print(f"   pipeline summary: {summary}")
    for event in xsec.analyzer.verdicts[:1]:
        response = event.verdict.response
        print(f"   LLM ({event.verdict.model}) verdict: {response.verdict}")
        print(f"   explanation: {response.explanation[:300]}...")
        if response.top_attacks:
            print(f"   top attack: {response.top_attacks[0][0]}")
        for step in response.remediations[:2]:
            print(f"   remediation: {step}")
    latency = xsec.pipeline.latency_report()
    print(
        f"   detection latency: mean {1000 * latency['detection_s']['mean']:.0f} ms "
        f"(near-RT budget is 10 ms - 1 s)"
    )


if __name__ == "__main__":
    main()
