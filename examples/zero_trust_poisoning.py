#!/usr/bin/env python3
"""Zero-trust O-RAN: defeating telemetry poisoning (paper §5).

Scenario: an adversary with access to the E2 transport (a compromised
transport switch, or a rogue E2 node) wants future attacks to go
undetected. During MobiWatch's training-collection phase it injects forged
MobiFlow indications replaying the footprint of its own BTS DoS tool, so
the anomaly model learns the signaling storm as normal traffic.

The same campaign runs against two deployments:

- the default O-RAN setup, where E2 carries no message authentication;
- a zero-trust deployment where every E2AP PDU is HMAC-sealed with
  per-node keys and replay-protected nonces (repro.oran.zerotrust).

Run:  python examples/zero_trust_poisoning.py   (~1 minute)
"""

from repro.experiments.poisoning import PoisoningConfig, run_poisoning_experiment


def main() -> None:
    print("Running both arms (unprotected and zero-trust E2) ...\n")
    result = run_poisoning_experiment(PoisoningConfig())
    print(result.render())
    print()
    unprotected = result.unprotected
    protected = result.zero_trust
    print("What happened:")
    print(
        f"- The rogue node injected {unprotected.forged_records_injected} forged "
        "telemetry records mimicking its BTS DoS tool."
    )
    print(
        "- Unprotected E2 accepted every forged indication; trained on that "
        f"stream, MobiWatch's recall against a real BTS DoS fell to "
        f"{100 * unprotected.bts_dos_recall:.0f}%."
    )
    print(
        f"- Zero-trust E2 rejected all {protected.forged_indications_rejected} "
        f"forged indications; recall stayed at {100 * protected.bts_dos_recall:.0f}%."
    )


if __name__ == "__main__":
    main()
