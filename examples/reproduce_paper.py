#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Writes the rendered artifacts to ``./paper_artifacts/``:

- table2.txt  — detection performance (Table 2)
- figure4.txt — AE reconstruction-error patterns (Figure 4)
- table3.txt  — LLM classification grid (Table 3)
- figure5.txt — prompt template + example response (Figure 5)

This is the long way around (~1-2 minutes); the benchmark harness under
``benchmarks/`` regenerates the same artifacts with shape assertions.

Run:  python examples/reproduce_paper.py
"""

import pathlib
import time

from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3

OUT = pathlib.Path("paper_artifacts")


def main() -> None:
    OUT.mkdir(exist_ok=True)
    jobs = (
        ("table2.txt", lambda: run_table2().render()),
        ("figure4.txt", lambda: run_figure4().render()),
        ("table3.txt", lambda: run_table3().render()),
        ("figure5.txt", lambda: run_figure5().render()),
    )
    for name, job in jobs:
        started = time.time()
        print(f"generating {name} ...", flush=True)
        text = job()
        (OUT / name).write_text(text + "\n", encoding="utf-8")
        print(text)
        print(f"  -> {OUT / name} ({time.time() - started:.0f}s)\n")


if __name__ == "__main__":
    main()
