#!/usr/bin/env python3
"""Identity extraction, explained by five LLMs (paper §4.2, Table 3).

Scenario: a man-in-the-middle runs both identity-extraction attacks from
the literature against a victim handset — LTrack's downlink overwrite
(AuthenticationRequest -> IdentityRequest, leaking the SUPI in a plaintext
IdentityResponse) and AdaptOver's uplink overshadowing (downgrading the
SUCI to the null concealment scheme). The flagged traces are then handed
to all five simulated LLM analysts, with and without retrieval-augmented
prompts, showing exactly which models catch which attack and how they
explain it.

Run:  python examples/identity_extraction_explained.py
"""

from repro.attacks import DownlinkIdExtractionAttack, UplinkIdExtractionAttack
from repro.llm import ExpertAnalyst, LlmClient, SimulatedLlmServer
from repro.llm.profiles import MODEL_PROFILES
from repro.ran import FiveGNetwork, NetworkConfig
from repro.telemetry import MobiFlowCollector


def run_attack(attack_cls, seed):
    """Run one MiTM attack against a fresh victim; return its trace."""
    net = FiveGNetwork(NetworkConfig(seed=seed))
    background = net.add_ue("pixel5")
    net.sim.schedule(0.2, background.start_session)
    victim = net.add_ue("pixel6", name="victim")
    net.sim.schedule(2.5, victim.start_session)
    attack = attack_cls(net, victim=victim, start_time=2.0, duration_s=10.0)
    attack.arm()
    net.run(until=25.0)
    series = MobiFlowCollector().parse_stream(net.pcap)
    sessions = {r.session_id for r in series if attack.is_malicious(r)}
    trace = [r for r in series if r.session_id in sessions]
    return attack, trace


def main() -> None:
    server = SimulatedLlmServer()
    for attack_cls, title in (
        (DownlinkIdExtractionAttack, "Downlink identity extraction (LTrack)"),
        (UplinkIdExtractionAttack, "Uplink identity extraction (AdaptOver)"),
    ):
        attack, trace = run_attack(attack_cls, seed=7)
        print("=" * 72)
        print(f"{title} — {len(trace)} telemetry entries in the flagged trace")
        exposed = [r for r in trace if r.exposes_permanent_identity()]
        for record in exposed:
            print(
                f"  leaked identity at t={record.timestamp:.3f}: "
                f"msg={record.msg} supi={record.supi} suci={record.suci}"
            )
        print(f"\n  {'model':18s} verdict     top attack")
        for model in MODEL_PROFILES:
            analyst = ExpertAnalyst(client=LlmClient(server=server, model=model))
            verdict = analyst.analyze(trace, detector_flagged=True)
            top = (
                verdict.response.top_attacks[0][0][:44]
                if verdict.response.top_attacks
                else "-"
            )
            flag = " (ESCALATED to human review)" if verdict.needs_human_review else ""
            print(f"  {model:18s} {verdict.response.verdict:10s}  {top}{flag}")

        # Retrieval augmentation (paper §5, Specialized LLM for 6G).
        rag = ExpertAnalyst(
            client=LlmClient(server=server, model="chatgpt-4o"), use_rag=True
        )
        verdict = rag.analyze(trace, detector_flagged=True)
        print("\n  RAG prompt snippets retrieved for chatgpt-4o:")
        for snippet in rag.knowledge.retrieve(trace):
            print(f"   - {snippet[:90]}...")
        print(f"\n  chatgpt-4o explanation:\n   {verdict.response.explanation[:320]}")
        print()


if __name__ == "__main__":
    main()
